// Scheduler-seam overhead bench — the batched/incremental dispatch path
// (DESIGN.md §5e) measured against the legacy per-container seam it
// replaced, on the same workloads.
//
// For each (scheduler, jobs, containers) point the same synthetic backlog
// runs twice, once per seam, with ClusterConfig::profile_seam accumulating
// the wall time of seam work only (view construction/refresh, scheduler
// notifications and assignment calls — launches and bookkeeping excluded,
// since they are identical in both modes).  The figure of merit is
// scheduler-side events/sec = scheduling_events / seam_seconds; because the
// two seams are bit-identical (tests/seam_batch_test.cc), the event counts
// agree and the ratio is purely the seam win.  The gain is algorithmic —
// the legacy seam builds an O(jobs) snapshot per scheduler call, the
// batched seam refreshes O(dirty) slots once per wave — so it holds on a
// 1-CPU host.
//
// Writes out/dispatch_overhead.csv and BENCH_dispatch.json (working
// directory; CI runs it from the repo root).
//
// RUSH points run with change-proportional planning on — replan elision
// plus layer replay (DESIGN.md §5h) at $RUSH_DISPATCH_ETA_TOL — and are
// additionally run a third time on the batched seam with elision off (mode
// "batched-replan").  Planning cost is identical in both seams, so it
// cancels out of the legacy/batched ratio; the RUSH speedup is therefore
// the events/sec ratio of the elision config over that always-replan
// baseline, and the new columns plans_elided_per_wave /
// layers_replayed_per_pass show where it comes from.
//
// Exit status: non-zero when a batched run builds any full snapshot on the
// dispatch path (views-built-per-wave must be 0, not merely <= 1), when a
// Fair batched seam is slower than the legacy seam at >= 100 jobs, when the
// Fair 200x48 seam speedup falls below $RUSH_DISPATCH_MIN_SPEEDUP (default
// 2.0), or when the RUSH 200x48 elision speedup falls below
// $RUSH_DISPATCH_MIN_RUSH_SPEEDUP.  Scale knobs: $RUSH_DISPATCH_SEED
// (default 4242), $RUSH_DISPATCH_REPEATS (default 1, best-of; points with
// >= 1000 jobs always run once), $RUSH_DISPATCH_LARGE_JOBS (default 10000;
// < 1000 drops the large grid), $RUSH_DISPATCH_ETA_TOL (default 0.15),
// $RUSH_BENCH_JSON.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/provenance.h"
#include "src/cluster/cluster.h"
#include "src/cluster/node.h"
#include "src/common/rng.h"
#include "src/core/rush_scheduler.h"
#include "src/experiments/experiment.h"
#include "src/metrics/csv.h"
#include "src/metrics/text_table.h"

namespace rush {
namespace {

double env_or(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? std::atof(value) : fallback;
}

/// A contended backlog: arrivals spread over a window far shorter than the
/// total work, so most jobs stay active at once and the views the legacy
/// seam rebuilds per handout are as wide as the job count.  The 10k+ grid
/// stresses view *width*, not event count: per-job task counts shrink so
/// the legacy O(jobs)-per-handout cost stays measurable without the run
/// taking minutes.
std::vector<JobSpec> backlog_workload(int jobs, std::uint64_t seed) {
  Rng rng(seed);
  const bool large = jobs >= 1000;
  std::vector<JobSpec> specs;
  for (int j = 0; j < jobs; ++j) {
    JobSpec spec;
    spec.name = "job" + std::to_string(j);
    spec.arrival = rng.uniform(0.0, 2.0 * jobs);
    spec.budget = rng.uniform(500.0, 4000.0);
    spec.priority = rng.uniform(0.5, 3.0);
    spec.beta = 1.0;
    spec.utility_kind = "sigmoid";
    const int maps = large ? 3 + static_cast<int>(rng.uniform_int(0, 3))
                           : 10 + static_cast<int>(rng.uniform_int(0, 15));
    const int reduces = static_cast<int>(rng.uniform_int(0, large ? 1 : 4));
    for (int m = 0; m < maps; ++m) {
      spec.tasks.push_back(TaskSpec{rng.uniform(20.0, 120.0), false});
    }
    for (int r = 0; r < reduces; ++r) {
      spec.tasks.push_back(TaskSpec{rng.uniform(20.0, 90.0), true});
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct Point {
  const char* scheduler;
  int jobs;
  int containers;
};

struct ModeResult {
  RunResult run;
  double wall_ms = 0.0;
  long plans = 0;    // RUSH only: planning passes
  long elided = 0;   // RUSH only: waves served from the cached plan
  long replayed = 0; // RUSH only: peel layers replayed across passes
  double events_per_sec() const {
    return run.seam_seconds > 0.0
               ? static_cast<double>(run.scheduling_events) / run.seam_seconds
               : 0.0;
  }
};

/// RUSH tunables of the bench: the change-proportional planning pipeline
/// (DESIGN.md §5h) with warm-started peeling, an elision tolerance from
/// $RUSH_DISPATCH_ETA_TOL (relative eta drift, default 0.15), and the WCDE
/// cache on — the configuration whose dispatch cost the RUSH gates defend.
RushConfig bench_rush_config() {
  RushConfig config;
  config.warm_start_peeling = true;
  config.replan_elision = true;
  config.replan_eta_tolerance = env_or("RUSH_DISPATCH_ETA_TOL", 0.15);
  return config;
}

/// The pre-elision planner: warm-started peeling but a full WCDE+peel+map
/// pass on every dirty wave — the baseline the RUSH speedup gate measures
/// change-proportional planning against.
RushConfig replan_rush_config() {
  RushConfig config = bench_rush_config();
  config.replan_elision = false;
  config.replan_eta_tolerance = 0.0;
  return config;
}

ModeResult run_point(const Point& point, bool batched, std::uint64_t seed,
                     const RushConfig& rush_config) {
  ClusterConfig config;
  config.nodes = homogeneous_nodes(point.containers / 8, 8);
  config.runtime_noise_sigma = 0.25;
  config.seed = seed + 17;
  config.batched_dispatch = batched;
  config.audit_incremental_view = false;  // never measure the audits
  config.profile_seam = true;

  const auto scheduler = make_named_scheduler(point.scheduler, rush_config);
  Cluster cluster(config, *scheduler);
  for (JobSpec spec : backlog_workload(point.jobs, seed)) {
    cluster.submit(std::move(spec));
  }
  ModeResult mode;
  const auto start = std::chrono::steady_clock::now();
  mode.run = cluster.run();
  const auto stop = std::chrono::steady_clock::now();
  mode.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  if (!mode.run.completed) {
    std::fprintf(stderr, "dispatch_overhead: %s %dx%d (%s) did not drain\n",
                 point.scheduler, point.jobs, point.containers,
                 batched ? "batched" : "legacy");
    std::exit(2);
  }
  if (const auto* r = dynamic_cast<const RushScheduler*>(scheduler.get())) {
    const PlanStats stats = r->plan_stats();
    mode.plans = r->plans_computed();
    mode.elided = stats.plans_elided;
    mode.replayed = stats.layers_replayed;
  }
  return mode;
}

/// Best seam time over `repeats` runs (identical simulations; repeats only
/// damp timer noise on loaded hosts).
ModeResult best_of(const Point& point, bool batched, std::uint64_t seed,
                   int repeats, const RushConfig& rush_config) {
  ModeResult best = run_point(point, batched, seed, rush_config);
  for (int r = 1; r < repeats; ++r) {
    ModeResult next = run_point(point, batched, seed, rush_config);
    if (next.run.seam_seconds < best.run.seam_seconds) best = std::move(next);
  }
  return best;
}

}  // namespace
}  // namespace rush

int main() {
  using rush::ModeResult;
  using rush::Point;
  using rush::TextTable;

  const auto seed =
      static_cast<std::uint64_t>(rush::env_or("RUSH_DISPATCH_SEED", 4242.0));
  const int repeats =
      std::max(1, static_cast<int>(rush::env_or("RUSH_DISPATCH_REPEATS", 1.0)));
  const double min_speedup = rush::env_or("RUSH_DISPATCH_MIN_SPEEDUP", 2.0);
  const double min_rush_speedup =
      rush::env_or("RUSH_DISPATCH_MIN_RUSH_SPEEDUP", 1.5);
  const int large_jobs =
      static_cast<int>(rush::env_or("RUSH_DISPATCH_LARGE_JOBS", 10000.0));

  // Fair is the seam-bound policy (cheap per-handout rule, so view costs
  // dominate) and carries the seam gates, including the 10k-job grid where
  // the legacy O(jobs)-per-handout view cost is at its widest; the RUSH
  // points additionally exercise change-proportional planning — replan
  // elision plus layer replay (DESIGN.md §5h) — and carry their own
  // speedup gate.
  std::vector<Point> points = {{"Fair", 50, 16},
                               {"Fair", 100, 48},
                               {"Fair", 200, 48},
                               {"RUSH", 50, 16},
                               {"RUSH", 200, 48}};
  if (large_jobs >= 1000) points.push_back({"Fair", large_jobs, 48});

  const std::string csv_path = rush::output_path("dispatch_overhead.csv");
  rush::CsvWriter csv(csv_path,
                      {"scheduler", "jobs", "containers", "mode", "events", "waves",
                       "full_views_built", "view_updates", "views_per_wave",
                       "plans_per_wave", "plans_elided_per_wave",
                       "layers_replayed_per_pass", "seam_ms", "events_per_sec",
                       "speedup", "run_wall_ms", "makespan_s"});
  TextTable table({"point", "mode", "events", "views/wave", "seam ms", "events/sec",
                   "speedup"});

  bool failed = false;
  double fair_speedup = 0.0;
  double rush_speedup = 0.0;
  std::ostringstream json_points;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const Point& point = points[p];
    const bool is_fair = std::string(point.scheduler) == "Fair";
    // Large grids amortize timer noise over the run itself; repeating them
    // would dominate the bench's wall time for no precision win.
    const int point_repeats = point.jobs >= 1000 ? 1 : repeats;
    const rush::RushConfig rush_config = rush::bench_rush_config();
    const ModeResult legacy =
        rush::best_of(point, false, seed, point_repeats, rush_config);
    const ModeResult batched =
        rush::best_of(point, true, seed, point_repeats, rush_config);
    if (batched.run.scheduling_events != legacy.run.scheduling_events) {
      std::fprintf(stderr,
                   "dispatch_overhead: FAIL — %s %dx%d seams diverged "
                   "(%ld vs %ld events)\n",
                   point.scheduler, point.jobs, point.containers,
                   batched.run.scheduling_events, legacy.run.scheduling_events);
      failed = true;
    }
    const double speedup = batched.run.seam_seconds > 0.0
                               ? legacy.run.seam_seconds / batched.run.seam_seconds
                               : 0.0;
    // RUSH only: the always-replan baseline on the same batched seam.  The
    // legacy/batched ratio cancels planning cost (both seams plan
    // identically), so change-proportional planning's win is measured
    // against this third run instead, as an events/sec ratio — a nonzero
    // tolerance may steer the simulation slightly, so seam seconds alone
    // would not compare like with like.
    ModeResult replan;
    double elision_speedup = 0.0;
    if (!is_fair) {
      replan = rush::best_of(point, true, seed, point_repeats,
                             rush::replan_rush_config());
      elision_speedup = replan.events_per_sec() > 0.0
                            ? batched.events_per_sec() / replan.events_per_sec()
                            : 0.0;
    }
    const std::string label = std::string(point.scheduler) + " " +
                              std::to_string(point.jobs) + "x" +
                              std::to_string(point.containers);
    const auto emit = [&](const char* mode, const ModeResult& m, double su) {
      const double waves = std::max(1.0, static_cast<double>(m.run.dispatch_waves));
      const double views_per_wave =
          static_cast<double>(m.run.full_views_built) / waves;
      const double plans_per_wave = static_cast<double>(m.plans) / waves;
      const double elided_per_wave = static_cast<double>(m.elided) / waves;
      const double replayed_per_pass =
          m.plans > 0 ? static_cast<double>(m.replayed) /
                            static_cast<double>(m.plans)
                      : 0.0;
      csv.add_row({point.scheduler, std::to_string(point.jobs),
                   std::to_string(point.containers), mode,
                   std::to_string(m.run.scheduling_events),
                   std::to_string(m.run.dispatch_waves),
                   std::to_string(m.run.full_views_built),
                   std::to_string(m.run.view_updates),
                   TextTable::num(views_per_wave, 2),
                   TextTable::num(plans_per_wave, 3),
                   TextTable::num(elided_per_wave, 3),
                   TextTable::num(replayed_per_pass, 3),
                   TextTable::num(m.run.seam_seconds * 1e3, 2),
                   TextTable::num(m.events_per_sec(), 0), TextTable::num(su, 2),
                   TextTable::num(m.wall_ms, 1), TextTable::num(m.run.makespan, 1)});
      table.add_row({label, mode, std::to_string(m.run.scheduling_events),
                     TextTable::num(views_per_wave, 2),
                     TextTable::num(m.run.seam_seconds * 1e3, 2),
                     TextTable::num(m.events_per_sec(), 0), TextTable::num(su, 2)});
    };
    emit("legacy", legacy, 1.0);
    emit("batched", batched, speedup);
    if (!is_fair) emit("batched-replan", replan, elision_speedup);

    // Gate 1: the batched dispatch path must never build a full snapshot.
    if (batched.run.full_views_built != 0) {
      std::fprintf(stderr,
                   "dispatch_overhead: FAIL — %s batched seam built %ld full "
                   "views (must be 0)\n",
                   label.c_str(), batched.run.full_views_built);
      failed = true;
    }
    // Gate 2: no throughput regression at realistic scale on the seam-bound
    // policy (RUSH carries its own gate below, since planning work dominates
    // both of its seams).
    if (is_fair && point.jobs >= 100 && speedup < 1.0) {
      std::fprintf(stderr,
                   "dispatch_overhead: FAIL — %s batched events/sec regressed "
                   "(%.2fx legacy)\n",
                   label.c_str(), speedup);
      failed = true;
    }
    if (point.jobs == 200 && point.containers == 48) {
      if (is_fair) {
        fair_speedup = speedup;
      } else {
        rush_speedup = elision_speedup;
      }
    }

    json_points << "  \"" << point.scheduler << "_" << point.jobs << "x"
                << point.containers << "\": {\n"
                << "    \"events\": " << batched.run.scheduling_events << ",\n"
                << "    \"legacy_seam_ms\": " << legacy.run.seam_seconds * 1e3
                << ",\n"
                << "    \"batched_seam_ms\": " << batched.run.seam_seconds * 1e3
                << ",\n"
                << "    \"legacy_events_per_sec\": " << legacy.events_per_sec()
                << ",\n"
                << "    \"batched_events_per_sec\": " << batched.events_per_sec()
                << ",\n"
                << "    \"speedup\": " << speedup << ",\n"
                << "    \"legacy_views_per_wave\": "
                << static_cast<double>(legacy.run.full_views_built) /
                       std::max(1.0, static_cast<double>(legacy.run.dispatch_waves))
                << ",\n"
                << "    \"batched_full_views_built\": " << batched.run.full_views_built
                << ",\n"
                << "    \"batched_view_updates\": " << batched.run.view_updates
                << ",\n"
                << "    \"plans_per_wave\": "
                << static_cast<double>(batched.plans) /
                       std::max(1.0, static_cast<double>(batched.run.dispatch_waves))
                << ",\n"
                << "    \"plans_elided_per_wave\": "
                << static_cast<double>(batched.elided) /
                       std::max(1.0, static_cast<double>(batched.run.dispatch_waves))
                << ",\n"
                << "    \"layers_replayed_per_pass\": "
                << (batched.plans > 0
                        ? static_cast<double>(batched.replayed) /
                              static_cast<double>(batched.plans)
                        : 0.0);
    if (!is_fair) {
      json_points << ",\n    \"replan_seam_ms\": " << replan.run.seam_seconds * 1e3
                  << ",\n    \"replan_events_per_sec\": "
                  << replan.events_per_sec()
                  << ",\n    \"elision_speedup\": " << elision_speedup;
    }
    json_points << "\n  },\n";
  }
  table.print(std::cout);
  std::printf(
      "\n200x48 gates: Fair seam speedup %.2fx (gate %.2fx), "
      "RUSH elision speedup %.2fx (gate %.2fx)\n",
      fair_speedup, min_speedup, rush_speedup, min_rush_speedup);
  std::printf("wrote %s\n", csv_path.c_str());

  const char* json_env = std::getenv("RUSH_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr && *json_env != '\0' ? json_env : "BENCH_dispatch.json";
  {
    std::ofstream json(json_path, std::ios::trunc);
    json << "{\n"
         << "  \"bench\": \"dispatch_overhead\",\n"
         << rush_bench::provenance_json_fields()
         << "  \"seed\": " << seed << ",\n"
         << "  \"repeats\": " << repeats << ",\n"
         << "  \"large_jobs\": " << large_jobs << ",\n"
         << "  \"eta_tolerance\": "
         << rush::env_or("RUSH_DISPATCH_ETA_TOL", 0.15) << ",\n"
         << json_points.str() << "  \"speedup_200x48\": " << fair_speedup
         << ",\n"
         << "  \"min_speedup_gate\": " << min_speedup << ",\n"
         << "  \"rush_speedup_200x48\": " << rush_speedup << ",\n"
         << "  \"min_rush_speedup_gate\": " << min_rush_speedup << "\n}\n";
  }
  std::printf("wrote %s\n", json_path.c_str());

  // Gate 3: the headline Fair point must clear the configured speedup bar.
  if (min_speedup > 0.0 && fair_speedup < min_speedup) {
    std::fprintf(stderr,
                 "dispatch_overhead: FAIL — Fair 200x48 speedup %.2fx below "
                 "required %.2fx\n",
                 fair_speedup, min_speedup);
    failed = true;
  }
  // Gate 4: change-proportional planning must beat the always-replan
  // baseline at the RUSH 200x48 point by the configured factor.
  if (min_rush_speedup > 0.0 && rush_speedup < min_rush_speedup) {
    std::fprintf(stderr,
                 "dispatch_overhead: FAIL — RUSH 200x48 elision speedup %.2fx "
                 "below required %.2fx\n",
                 rush_speedup, min_rush_speedup);
    failed = true;
  }
  return failed ? 1 : 0;
}
