// End-to-end plan profiler — the Fig 5 overhead story as one reproducible
// number series, and the warm-start replanning win measured in the setting
// that motivates it: a full Experiment, where nearly every task-completion
// event dirties the plan and the scheduler replans from scratch.
//
// Two identical experiments run back to back: cold (warm_start_peeling off,
// the bit-exact reference path) and warm (each onion-peel layer seeded by
// the previous pass's level).  The per-stage PlanStats profiler
// (WCDE / peel / mapping microseconds, peel probes, warm-layer and WCDE
// cache counters) is reduced to per-pass figures and written to
// out/e2e_profile.csv plus BENCH_e2e.json — the first point of the repo's
// perf trajectory.  Peel probe counts are hardware-independent, so the
// warm/cold probe ratio is comparable across machines; the microsecond
// columns are not.
//
// Exit status: non-zero when warm-start probes per pass exceed cold probes
// per pass (the warm path must never do more search work), or when the
// ratio falls below $RUSH_E2E_MIN_PROBE_RATIO when that gate is set.
// Scale knobs: $RUSH_E2E_JOBS (default 32), $RUSH_E2E_SEED (default 4242),
// $RUSH_BENCH_JSON (default BENCH_e2e.json in the working directory).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/provenance.h"
#include "src/experiments/experiment.h"
#include "src/metrics/csv.h"
#include "src/metrics/report.h"
#include "src/metrics/text_table.h"

namespace rush {
namespace {

struct ModeResult {
  RunResult run;
  PlanOverheadSummary overhead;
  double wall_ms = 0.0;
  double mean_utility = 0.0;
};

ModeResult run_mode(bool warm, int jobs, std::uint64_t seed) {
  ExperimentConfig config;
  config.num_jobs = jobs;
  config.mean_interarrival = 90.0;
  config.min_gigabytes = 0.5;
  config.max_gigabytes = 4.0;
  config.budget_ratio = 1.5;
  config.noise_sigma = 0.25;
  config.seed = seed;
  config.nodes = homogeneous_nodes(2, 6);  // 12 containers
  config.rush.warm_start_peeling = warm;

  ModeResult mode;
  const auto start = std::chrono::steady_clock::now();
  mode.run = run_experiment("RUSH", config);
  const auto stop = std::chrono::steady_clock::now();
  mode.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  if (!mode.run.completed) {
    std::fprintf(stderr, "e2e_profile: %s run did not drain all jobs\n",
                 warm ? "warm" : "cold");
    std::exit(2);
  }
  mode.overhead = summarize_plan_overhead(mode.run);
  const auto utilities = achieved_utilities(mode.run.jobs);
  for (double u : utilities) mode.mean_utility += u;
  if (!utilities.empty()) mode.mean_utility /= static_cast<double>(utilities.size());
  return mode;
}

double env_or(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? std::atof(value) : fallback;
}

}  // namespace
}  // namespace rush

int main() {
  using rush::ModeResult;
  using rush::PlanOverheadSummary;
  using rush::TextTable;

  const int jobs = static_cast<int>(rush::env_or("RUSH_E2E_JOBS", 32.0));
  const auto seed = static_cast<std::uint64_t>(rush::env_or("RUSH_E2E_SEED", 4242.0));
  const double min_ratio = rush::env_or("RUSH_E2E_MIN_PROBE_RATIO", 0.0);
  const double max_wcde_us = rush::env_or("RUSH_E2E_MAX_WCDE_US", 0.0);

  const ModeResult cold = rush::run_mode(false, jobs, seed);
  const ModeResult warm = rush::run_mode(true, jobs, seed);

  const std::string csv_path = rush::output_path("e2e_profile.csv");
  rush::CsvWriter csv(csv_path,
                      {"mode", "jobs", "passes", "peel_probes", "probes_per_pass",
                       "warm_pass_fraction", "warm_layers_per_pass", "wcde_us_per_pass",
                       "peel_us_per_pass", "map_us_per_pass", "plan_us_per_pass",
                       "wcde_cache_hit_rate", "run_wall_ms", "makespan_s",
                       "mean_utility"});
  TextTable table({"mode", "passes", "probes/pass", "peel us/pass", "plan us/pass",
                   "cache hits", "mean utility"});
  const auto emit = [&](const char* name, const ModeResult& m) {
    const PlanOverheadSummary& o = m.overhead;
    csv.add_row({name, std::to_string(jobs), std::to_string(o.passes),
                 std::to_string(m.run.plan_peel_probes),
                 TextTable::num(o.probes_per_pass, 2),
                 TextTable::num(o.warm_pass_fraction, 3),
                 TextTable::num(o.warm_layers_per_pass, 2),
                 TextTable::num(o.wcde_us, 1), TextTable::num(o.peel_us, 1),
                 TextTable::num(o.map_us, 1), TextTable::num(o.per_pass_us, 1),
                 TextTable::num(o.cache_hit_rate, 3), TextTable::num(m.wall_ms, 1),
                 TextTable::num(m.run.makespan, 1),
                 TextTable::num(m.mean_utility, 4)});
    table.add_row({name, std::to_string(o.passes), TextTable::num(o.probes_per_pass, 2),
                   TextTable::num(o.peel_us, 1), TextTable::num(o.per_pass_us, 1),
                   TextTable::num(o.cache_hit_rate, 3),
                   TextTable::num(m.mean_utility, 4)});
  };
  emit("cold", cold);
  emit("warm", warm);
  table.print(std::cout);

  const double cold_probes = cold.overhead.probes_per_pass;
  const double warm_probes = warm.overhead.probes_per_pass;
  const double ratio = warm_probes > 0.0 ? cold_probes / warm_probes : 0.0;
  std::printf("\npeel probes per pass: cold %.2f, warm %.2f -> %.2fx fewer\n",
              cold_probes, warm_probes, ratio);
  std::printf("wrote %s\n", csv_path.c_str());

  const char* json_env = std::getenv("RUSH_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr && *json_env != '\0' ? json_env : "BENCH_e2e.json";
  {
    std::ofstream json(json_path, std::ios::trunc);
    const auto mode_json = [&](const char* name, const ModeResult& m) {
      const PlanOverheadSummary& o = m.overhead;
      json << "  \"" << name << "\": {\n"
           << "    \"passes\": " << o.passes << ",\n"
           << "    \"peel_probes\": " << m.run.plan_peel_probes << ",\n"
           << "    \"probes_per_pass\": " << o.probes_per_pass << ",\n"
           << "    \"warm_pass_fraction\": " << o.warm_pass_fraction << ",\n"
           << "    \"warm_layers_per_pass\": " << o.warm_layers_per_pass << ",\n"
           << "    \"wcde_us_per_pass\": " << o.wcde_us << ",\n"
           << "    \"peel_us_per_pass\": " << o.peel_us << ",\n"
           << "    \"map_us_per_pass\": " << o.map_us << ",\n"
           << "    \"plan_us_per_pass\": " << o.per_pass_us << ",\n"
           << "    \"wcde_cache_hit_rate\": " << o.cache_hit_rate << ",\n"
           << "    \"run_wall_ms\": " << m.wall_ms << ",\n"
           << "    \"makespan_s\": " << m.run.makespan << ",\n"
           << "    \"mean_utility\": " << m.mean_utility << "\n"
           << "  }";
    };
    json << "{\n"
         << "  \"bench\": \"e2e_profile\",\n"
         << rush_bench::provenance_json_fields()
         << "  \"jobs\": " << jobs << ",\n"
         << "  \"seed\": " << seed << ",\n";
    mode_json("cold", cold);
    json << ",\n";
    mode_json("warm", warm);
    json << ",\n  \"probe_ratio\": " << ratio << "\n}\n";
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (warm_probes > cold_probes) {
    std::fprintf(stderr,
                 "e2e_profile: FAIL — warm probes/pass (%.2f) exceed cold (%.2f)\n",
                 warm_probes, cold_probes);
    return 1;
  }
  if (min_ratio > 0.0 && ratio < min_ratio) {
    std::fprintf(stderr,
                 "e2e_profile: FAIL — probe ratio %.2fx below required %.2fx\n",
                 ratio, min_ratio);
    return 1;
  }
  // Perf-smoke gate on the batched WCDE stage (DESIGN.md §5i): the warm
  // pass's per-pass WCDE microseconds must stay under the budget.  Warm, not
  // cold, because the steady-state feedback cycle is what the paper's Fig 5
  // overhead story measures.
  if (max_wcde_us > 0.0 && warm.overhead.wcde_us > max_wcde_us) {
    std::fprintf(stderr,
                 "e2e_profile: FAIL — warm WCDE %.2f us/pass above budget %.2f\n",
                 warm.overhead.wcde_us, max_wcde_us);
    return 1;
  }
  return 0;
}
