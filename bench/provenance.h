// Build/run provenance for the benchmark JSON emitters.
//
// BENCH_e2e.json and BENCH_dispatch.json are compared across commits and
// machines (the perf-smoke CI job archives them), so every emitter stamps
// where its numbers came from:
//
//   git_sha     $RUSH_GIT_SHA when set (CI passes the exact commit), else
//               `git rev-parse HEAD`, else "unknown" (tarball builds)
//   nproc       std::thread::hardware_concurrency() — the figure that
//               decides planner lane counts and therefore wall times
//   build_type  CMAKE_BUILD_TYPE baked in at compile time (a Debug number
//               must never be mistaken for a regression)

#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

namespace rush_bench {

inline std::string git_sha() {
  if (const char* env = std::getenv("RUSH_GIT_SHA");
      env != nullptr && *env != '\0') {
    return env;
  }
  std::string sha;
  if (std::FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buffer[128] = {};
    if (std::fgets(buffer, sizeof buffer, pipe) != nullptr) sha = buffer;
    ::pclose(pipe);
  }
  while (!sha.empty() &&
         std::isspace(static_cast<unsigned char>(sha.back()))) {
    sha.pop_back();
  }
  // Anything but a full hex id means we are not in a usable checkout.
  if (sha.size() < 7) return "unknown";
  for (const char c : sha) {
    if (std::isxdigit(static_cast<unsigned char>(c)) == 0) return "unknown";
  }
  return sha;
}

inline const char* build_type() {
#if defined(RUSH_BUILD_TYPE)
  return RUSH_BUILD_TYPE;
#else
  return "unknown";
#endif
}

/// The provenance fields as JSON object members, one per line at two-space
/// indent, each line comma-terminated — drop the result directly after the
/// emitter's opening `"bench"` field.
inline std::string provenance_json_fields() {
  std::string out;
  out += "  \"git_sha\": \"" + git_sha() + "\",\n";
  out += "  \"nproc\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "  \"build_type\": \"" + std::string(build_type()) + "\",\n";
  return out;
}

}  // namespace rush_bench
