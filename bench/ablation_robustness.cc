// Ablation A1 — the robustness knob.
//
// Sweeps the entropy threshold delta (including delta = 0, i.e. trusting
// the reference distribution outright, and the adaptive schedule) and both
// estimator classes, at two budget ratios.  Reports mean utility, zero-
// utility fraction and budget hit rate of the same PUMA-mix workload.
// This quantifies the price/payoff of the KL-ball robustness that
// distinguishes RUSH from its CoRa predecessor [3].

#include <iostream>

#include "src/experiments/experiment.h"
#include "src/metrics/report.h"
#include "src/metrics/text_table.h"

namespace rush {
namespace {

struct Variant {
  std::string label;
  RushConfig config;
};

void run_ablation() {
  std::vector<Variant> variants;
  for (double delta : {0.0, 0.1, 0.3, 0.7, 1.5}) {
    Variant v;
    v.label = "delta=" + TextTable::num(delta, 1);
    v.config.delta = delta;
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "adaptive";
    v.config.delta = 0.7;
    v.config.adaptive_delta = true;
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "mean-est d=0.7";
    v.config.estimator_kind = "mean";
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "bootstrap d=0.7";
    v.config.estimator_kind = "bootstrap";
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "ewma d=0.7";
    v.config.estimator_kind = "ewma";
    variants.push_back(v);
  }
  {
    Variant v;
    v.label = "phase-aware d=0.7";
    v.config.phase_aware_estimation = true;
    variants.push_back(v);
  }

  std::cout << "=== Ablation A1: robustness knob (delta) and estimator class ===\n";
  for (double ratio : {1.5, 1.0}) {
    std::cout << "\n--- budget ratio " << ratio << " ---\n";
    TextTable table({"variant", "mean-util", "zero-util %", "budget-hit %"});
    for (const Variant& v : variants) {
      double mean_util = 0.0, zero = 0.0, hit = 0.0;
      const int seeds = 3;
      for (std::uint64_t seed = 100; seed < 100 + static_cast<std::uint64_t>(seeds);
           ++seed) {
        ExperimentConfig config;
        config.budget_ratio = ratio;
        config.seed = seed;
        config.rush = v.config;
        const auto result = run_experiment("RUSH", config);
        double sum = 0.0;
        for (double u : achieved_utilities(result.jobs)) sum += u;
        mean_util += sum / static_cast<double>(result.jobs.size());
        zero += zero_utility_fraction(result.jobs);
        hit += budget_hit_fraction(result.jobs);
      }
      table.add_row({v.label, TextTable::num(mean_util / seeds, 3),
                     TextTable::num(100.0 * zero / seeds, 1),
                     TextTable::num(100.0 * hit / seeds, 1)});
    }
    table.print(std::cout);
  }
}

}  // namespace
}  // namespace rush

int main() {
  rush::run_ablation();
  return 0;
}
