// Fig 3 — robustness of the distribution estimation.
//
// The paper's experiment: a job of 100 map tasks + 1 reduce task whose task
// runtimes are N(60, 20^2) seconds.  After observing k completed-task
// samples, the Gaussian DE produces the reference distribution phi of the
// job's total demand; WCDE with entropy threshold delta yields the robust
// demand eta.  The figure plots P(eta >= v) — the probability that the
// robust estimate covers the job's realised total demand v — against the
// number of samples, for several delta.
//
// Expected shape: with fewer than ~35 samples no delta reaches the
// theta = 0.9 requirement; from ~35 samples (35% of the job's tasks) on,
// delta >= 0.7 clears it, and more samples let smaller deltas suffice.

#include <iostream>

#include "src/common/rng.h"
#include "src/estimator/distribution_estimator.h"
#include "src/metrics/csv.h"
#include "src/metrics/text_table.h"
#include "src/robust/wcde.h"

namespace rush {
namespace {

constexpr double kTrueMean = 60.0;
constexpr double kTrueStd = 20.0;
constexpr int kTasks = 101;  // 100 maps + 1 reduce
constexpr double kTheta = 0.9;
constexpr int kRepetitions = 200;

double coverage_probability(std::size_t samples, double delta, Rng& rng) {
  int covered = 0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    GaussianEstimator estimator;
    for (std::size_t s = 0; s < samples; ++s) {
      estimator.observe(rng.normal_at_least(kTrueMean, kTrueStd, 1.0));
    }
    const QuantizedPmf phi = estimator.remaining_demand(kTasks, 256);
    const double eta = solve_wcde(phi, Probability(kTheta), KlRadius(delta)).eta;
    double demand = 0.0;
    for (int t = 0; t < kTasks; ++t) {
      demand += rng.normal_at_least(kTrueMean, kTrueStd, 1.0);
    }
    if (eta >= demand) ++covered;
  }
  return static_cast<double>(covered) / kRepetitions;
}

void run_fig3() {
  const std::vector<std::size_t> sample_counts = {15, 25, 35, 45, 60, 80, 101};
  const std::vector<double> deltas = {0.1, 0.3, 0.5, 0.7, 1.0, 1.5};

  std::cout << "=== Fig 3: P(eta >= v) vs runtime samples and entropy threshold ===\n"
            << "job: 100 maps + 1 reduce, task runtime ~ N(60, 20^2) s, theta = 0.9, "
            << kRepetitions << " repetitions\n\n";

  std::vector<std::string> headers = {"samples"};
  for (double d : deltas) headers.push_back("delta=" + TextTable::num(d, 1));
  TextTable table(headers);
  const std::string csv_path = output_path("fig3_estimator_robustness.csv");
  CsvWriter csv(csv_path, headers);

  Rng rng(20160627);
  for (std::size_t samples : sample_counts) {
    std::vector<std::string> row = {std::to_string(samples)};
    for (double delta : deltas) {
      const double p = coverage_probability(samples, delta, rng);
      row.push_back(TextTable::num(p, 3) + (p >= kTheta ? "*" : " "));
    }
    table.add_row(row);
    csv.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\n(*) meets the theta = 0.9 requirement.  Series also written to "
            << csv_path << "\n";
}

}  // namespace
}  // namespace rush

int main() {
  rush::run_fig3();
  return 0;
}
