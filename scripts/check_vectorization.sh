#!/usr/bin/env bash
# Verifies that the batched-WCDE hot loops actually auto-vectorize
# (DESIGN.md §5i).  The SoA layout of PmfArena and the branch-free masked
# sweeps of solve_wcde_batch exist *for* the vectorizer; a refactor that
# silently re-introduces a loop-carried dependency or an opaque branch
# would keep every test green while quietly reverting the kernel to scalar
# code.  This script makes that regression loud.
#
# Two compilers are supported:
#   clang++  -Rpass=loop-vectorize        (preferred; CI's static-safety job)
#   g++      -fopt-info-vec-optimized     (fallback for local Debian images)
#
# Each checked translation unit must report at least one vectorized loop at
# -O3 -mavx2.  -O3 matters for the g++ fallback: at -O2 GCC runs the
# vectorizer with the "very-cheap" cost model, which refuses the runtime
# alias versioning these plane sweeps need, so only Release (-O3) perf
# builds get the vector bodies.  -mavx2 targets the ISA the
# RUSH_NATIVE_ARCH perf builds actually use, not the x86-64 SSE2 baseline
# (the layout still helps there, but the remark sets differ).  Exit
# non-zero when any unit produces no vectorization remark.
#
# Usage: scripts/check_vectorization.sh [compiler]

set -u -o pipefail

cd "$(dirname "$0")/.."

# The kernel translation units whose hot sweeps must vectorize.
UNITS=(
  src/stats/pmf_arena.cc
  src/robust/wcde_batch.cc
)

CXX="${1:-}"
if [[ -z "$CXX" ]]; then
  if command -v clang++ >/dev/null 2>&1; then
    CXX=clang++
  elif command -v g++ >/dev/null 2>&1; then
    CXX=g++
  else
    echo "check_vectorization: no clang++ or g++ on PATH" >&2
    exit 2
  fi
fi

case "$("$CXX" --version | head -1)" in
  *clang*) REMARK_FLAGS=(-Rpass=loop-vectorize); PATTERN='vectorized loop' ;;
  *)       REMARK_FLAGS=(-fopt-info-vec-optimized); PATTERN='optimized: loop vectorized' ;;
esac

FLAGS=(-std=c++20 -O3 -mavx2 -c -o /dev/null -I .)

failures=0
for unit in "${UNITS[@]}"; do
  remarks=$("$CXX" "${FLAGS[@]}" "${REMARK_FLAGS[@]}" "$unit" 2>&1)
  status=$?
  if [[ $status -ne 0 ]]; then
    echo "check_vectorization: FAIL — $unit did not compile with $CXX:" >&2
    echo "$remarks" | head -20 >&2
    failures=$((failures + 1))
    continue
  fi
  count=$(echo "$remarks" | grep -c "$PATTERN")
  if [[ $count -eq 0 ]]; then
    echo "check_vectorization: FAIL — $unit: no '$PATTERN' remark from $CXX" >&2
    echo "$remarks" | head -20 >&2
    failures=$((failures + 1))
  else
    echo "check_vectorization: OK — $unit: $count vectorized loop(s) ($CXX)"
  fi
done

if [[ $failures -ne 0 ]]; then
  echo "check_vectorization: $failures unit(s) failed" >&2
  exit 1
fi
echo "check_vectorization: all kernel units vectorize"
