#!/usr/bin/env bash
# Repo-convention linter + rushlint + clang-tidy driver.
#
# Usage: scripts/lint.sh [--no-tidy] [build-dir]
#
# Custom rules (always run, pure grep — no toolchain needed), over src/,
# tests/, bench/ and examples/:
#   R1  headers must use #pragma once
#   R2  no `using namespace` in headers (examples/ is exempt: the examples
#       are standalone programs and their headers are program-private)
#   R3  every require()/ensure()/RUSH_DCHECK() call carries a message string
#   R4  no bare `throw std::...` outside src/common/error.h — use
#       require()/ensure() or the rush exception types
#
# rushlint (tools/rushlint) then runs the token-aware determinism rules
# D1–D6, the layering rule L1, and the serialization-schema rules D7–D10
# (see DESIGN.md §5f–§5g and §5k).  The build-tree binary is used when
# present; otherwise it is bootstrap-compiled — it is plain C++20 with no
# deps.
#
# clang-tidy (profile in .clang-tidy) runs over src/ when the binary and a
# compile_commands.json are available; pass --no-tidy to skip explicitly.
set -u -o pipefail

cd "$(dirname "$0")/.."

RUN_TIDY=1
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --no-tidy) RUN_TIDY=0 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

declare -A rule_failures=()
failures=0
fail() {  # fail <rule> <message>
  echo "lint: $1 $2" >&2
  rule_failures[$1]=$((${rule_failures[$1]:-0} + 1))
  failures=$((failures + 1))
}

headers=$(find src tests bench examples -name '*.h' | sort)
sources=$(find src tests bench examples -name '*.h' -o -name '*.cc' | sort)

# R1: every header declares #pragma once.
for h in $headers; do
  grep -q '^#pragma once$' "$h" || fail R1 "$h: missing '#pragma once'"
done

# R2: no `using namespace` at any scope in headers (examples/ exempt).
for h in $headers; do
  case "$h" in examples/*) continue ;; esac
  if grep -n 'using namespace' "$h" /dev/null; then
    fail R2 "$h: 'using namespace' in a header"
  fi
done

# R3: require()/ensure()/RUSH_DCHECK() calls must carry a message.  Matches
# each call statement (up to the terminating semicolon, across lines) and
# demands a string literal inside it.  Declarations/definitions in
# src/common/error.h are exempt.
for f in $sources; do
  [ "$f" = "src/common/error.h" ] && continue
  matches=$(grep -Pzo '(?s)\b(require|ensure|RUSH_DCHECK)\s*\([^;]*?\)\s*;' "$f" | tr -d '\0') || true
  [ -n "$matches" ] || continue
  while IFS= read -r stmt; do
    [ -n "$stmt" ] || continue
    case "$stmt" in
      *'"'*) ;;
      *) fail R3 "$f: check without message: $stmt" ;;
    esac
  done <<EOF
$(printf '%s' "$matches" | tr '\n' ' ' | sed 's/;/;\n/g')
EOF
done

# R4: no bare standard-library throws outside the error header.  A site whose
# contract pins the exception type (e.g. replacement operator new must throw
# std::bad_alloc) is exempted with a same-line `// lint: R4-ok(<reason>)`.
for f in $sources; do
  [ "$f" = "src/common/error.h" ] && continue
  if grep -n 'throw std::' "$f" /dev/null | grep -v 'lint: R4-ok('; then
    fail R4 "$f: bare 'throw std::...' — use require()/ensure() or rush exceptions"
  fi
done

# rushlint: token-aware determinism, dimensional-safety, layering, and
# serialization-schema rules (D1–D10, L1) over src/, tests/, examples/.
# Under GitHub Actions the findings are emitted as ::error annotations so
# they land inline on the PR diff.
rushlint_bin="$BUILD_DIR/tools/rushlint"
if [ ! -x "$rushlint_bin" ]; then
  rushlint_bin=$(mktemp -t rushlint.XXXXXX)
  trap 'rm -f "$rushlint_bin"' EXIT
  echo "lint: no $BUILD_DIR/tools/rushlint; bootstrap-compiling" >&2
  if ! "${CXX:-c++}" -std=c++20 -O1 -o "$rushlint_bin" tools/rushlint/rushlint.cc; then
    fail rushlint "failed to bootstrap-compile tools/rushlint/rushlint.cc"
    rushlint_bin=""
  fi
fi
if [ -n "$rushlint_bin" ]; then
  rushlint_args=(--repo-root . --baseline tools/rushlint/suppressions.baseline
                 --schema-baseline tools/rushlint/schema.baseline)
  if [ "${GITHUB_ACTIONS:-}" = "true" ]; then
    rushlint_args+=(--github)
  fi
  if ! "$rushlint_bin" "${rushlint_args[@]}"; then
    fail rushlint "determinism/unit/schema findings (rules D1-D10, L1 above)"
  fi
fi

# clang-tidy over src/ (the curated .clang-tidy profile).
if [ "$RUN_TIDY" -eq 1 ]; then
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "lint: clang-tidy not found; skipping (use --no-tidy to silence)" >&2
  elif [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "lint: no $BUILD_DIR/compile_commands.json; configure with" >&2
    echo "      cmake -B $BUILD_DIR -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    fail clang-tidy "missing compile_commands.json"
  else
    # shellcheck disable=SC2046
    if ! clang-tidy -p "$BUILD_DIR" --quiet $(find src -name '*.cc' | sort); then
      fail clang-tidy "reported findings"
    fi
  fi
fi

if [ "$failures" -gt 0 ]; then
  {
    echo "lint: FAILED ($failures problem(s)):"
    for rule in "${!rule_failures[@]}"; do
      echo "lint:   $rule: ${rule_failures[$rule]}"
    done
  } >&2
  exit 1
fi
echo "lint: OK"
