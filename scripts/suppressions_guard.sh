#!/usr/bin/env bash
# Regression guard for the rushlint suppression budget (rule D4's ratchet,
# enforced across commits): tools/rushlint/suppressions.baseline may only
# ever shrink.  rushlint itself stops the tree from exceeding the checked-in
# numbers; this guard stops a PR from quietly raising the numbers.
#
# Usage: scripts/suppressions_guard.sh [BASE_REF]
#
# The per-tag counts at BASE_REF (argument, $RUSH_BASELINE_REF, or the first
# of origin/main, main, HEAD~1 that resolves) are compared against the
# working tree; any existing tag whose budget grew fails.  A tag absent at
# the base is a new rule's initial census and is allowed (with a notice) —
# the ratchet starts turning the moment the tag is checked in.  When no base
# revision resolves (shallow clone, fresh repo) the guard skips with a
# notice rather than failing: rushlint's own budget check still runs in
# every configuration.
set -u -o pipefail

cd "$(dirname "$0")/.."
BASELINE=tools/rushlint/suppressions.baseline

REF="${1:-${RUSH_BASELINE_REF:-}}"
if [ -z "$REF" ]; then
  for candidate in origin/main main "HEAD~1"; do
    if git rev-parse --verify --quiet "$candidate^{commit}" > /dev/null; then
      REF=$candidate
      break
    fi
  done
fi
if [ -z "$REF" ]; then
  echo "suppressions-guard: no base revision resolves; skipping" >&2
  exit 0
fi

# `tag count` lines only; comments and blanks are layout.
budget() { awk '!/^[[:space:]]*(#|$)/ && NF == 2 { print $1, $2 }'; }

old=$(git show "$REF:$BASELINE" 2>/dev/null | budget || true)
new=$(budget < "$BASELINE")

failures=0
while read -r tag count; do
  [ -n "$tag" ] || continue
  old_count=$(printf '%s\n' "$old" | awk -v t="$tag" '$1 == t { print $2 }')
  if [ -z "$old_count" ]; then
    echo "suppressions-guard: note — new tag '$tag' enters with budget $count" \
         "(initial census of a new rule; it may only shrink from here)" >&2
    continue
  fi
  if [ "$count" -gt "$old_count" ]; then
    echo "suppressions-guard: FAIL — '$tag' budget grew $old_count -> $count" \
         "($BASELINE may only shrink; fix the code instead of suppressing)" >&2
    failures=$((failures + 1))
  fi
done <<EOF
$new
EOF

if [ "$failures" -gt 0 ]; then
  exit 1
fi
echo "suppressions-guard: OK (no tag budget grew vs $REF)"
