#!/usr/bin/env bash
# Cross-commit guard for the serializer schema ratchet (rushlint rule D9,
# enforced across commits): a fingerprint in tools/rushlint/schema.baseline
# may only change together with a bump of its owning version constant.
# rushlint itself pins the working tree to the committed baseline; this
# guard stops a PR from regenerating the baseline around a layout change
# without paying the version bump.
#
# Usage: scripts/schema_guard.sh [BASE_REF]
#
# Each '<writer->reader> <owner>=<value> <ops>' entry at BASE_REF (argument,
# $RUSH_BASELINE_REF, or the first of origin/main, main, HEAD~1 that
# resolves) is compared against the working tree:
#   - ops changed, same owner, version not increased       -> FAIL
#   - version moved backwards                              -> FAIL
#   - ops changed with a version bump (or a new owner)     -> OK
#   - pair added or removed                                -> notice only
# When no base revision resolves (shallow clone, fresh repo) the guard
# skips with a notice: rushlint's own baseline comparison still runs in
# every configuration.
set -u -o pipefail

cd "$(dirname "$0")/.."
BASELINE=tools/rushlint/schema.baseline

REF="${1:-${RUSH_BASELINE_REF:-}}"
if [ -z "$REF" ]; then
  for candidate in origin/main main "HEAD~1"; do
    if git rev-parse --verify --quiet "$candidate^{commit}" > /dev/null; then
      REF=$candidate
      break
    fi
  done
fi
if [ -z "$REF" ]; then
  echo "schema-guard: no base revision resolves; skipping" >&2
  exit 0
fi

# 'id owner=value ops' lines only; comments and blanks are layout.
entries() { awk '!/^[[:space:]]*(#|$)/ && NF == 3 { print $1, $2, $3 }'; }

old=$(git show "$REF:$BASELINE" 2>/dev/null | entries || true)
if [ -z "$old" ]; then
  echo "schema-guard: note — $BASELINE does not exist at $REF;" \
       "initial census, the ratchet starts now" >&2
  exit 0
fi
new=$(entries < "$BASELINE")

failures=0
while read -r id versioned ops; do
  [ -n "$id" ] || continue
  owner=${versioned%%=*}
  value=${versioned##*=}
  old_line=$(printf '%s\n' "$old" | awk -v i="$id" '$1 == i { print; exit }')
  if [ -z "$old_line" ]; then
    echo "schema-guard: note — new serializer pair '$id'" \
         "enters with $owner=$value" >&2
    continue
  fi
  old_versioned=$(printf '%s\n' "$old_line" | awk '{ print $2 }')
  old_ops=$(printf '%s\n' "$old_line" | awk '{ print $3 }')
  old_owner=${old_versioned%%=*}
  old_value=${old_versioned##*=}
  if [ "$owner" = "$old_owner" ] && [ "$value" -lt "$old_value" ]; then
    echo "schema-guard: FAIL — '$id' version constant $owner moved" \
         "backwards ($old_value -> $value)" >&2
    failures=$((failures + 1))
    continue
  fi
  if [ "$ops" != "$old_ops" ]; then
    if [ "$owner" != "$old_owner" ]; then
      echo "schema-guard: note — '$id' changed layout under a new owner" \
           "($old_owner -> $owner); treating the re-owning as the bump" >&2
    elif [ "$value" -le "$old_value" ]; then
      echo "schema-guard: FAIL — layout of '$id' changed but $owner is" \
           "still $value (bump the constant, then regenerate with" \
           "'rushlint --repo-root . --update-schema-baseline')" >&2
      failures=$((failures + 1))
    fi
  fi
done <<EOF
$new
EOF

while read -r id versioned ops; do
  [ -n "$id" ] || continue
  if ! printf '%s\n' "$new" | awk -v i="$id" '$1 == i { found = 1 } END { exit !found }'; then
    echo "schema-guard: note — serializer pair '$id' was removed" \
         "(make sure no persisted data still carries its bytes)" >&2
  fi
done <<EOF
$old
EOF

if [ "$failures" -gt 0 ]; then
  exit 1
fi
echo "schema-guard: OK (every layout change vs $REF carries a version bump)"
