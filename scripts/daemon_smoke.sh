#!/usr/bin/env bash
# rushd smoke session (CI: the daemon-smoke job).
#
# 1. Record a deterministic reference: the in-process engine simulation on
#    examples/jobs.xml, dumping its event log and trace CSV.
# 2. Start rushd on a Unix socket in --client-time mode with a WAL.
# 3. Play the reference log into the daemon over the socket.
# 4. Replay the daemon's own WAL offline through the engine.
# 5. The replayed trace must be byte-identical to the reference trace, and
#    the daemon's WAL byte-identical to the reference event log — the
#    engine determinism guarantee of DESIGN.md §5j.  Any diff fails.
#
# Usage: scripts/daemon_smoke.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
RUSHD="$REPO_ROOT/$BUILD_DIR/src/rushd"
CLIENT="$REPO_ROOT/$BUILD_DIR/examples/rushd_client"
JOBS="$REPO_ROOT/examples/jobs.xml"
WORK="$(mktemp -d)"
SOCKET="$WORK/rushd.sock"
CAPACITY=6

cleanup() {
  [[ -n "${RUSHD_PID:-}" ]] && kill "$RUSHD_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

[[ -x "$RUSHD" && -x "$CLIENT" ]] || {
  echo "daemon_smoke: build rushd and rushd_client first ($BUILD_DIR)" >&2
  exit 1
}

echo "== record reference =="
"$CLIENT" --record-reference "$WORK/ref.evlog" --trace "$WORK/ref.csv" \
          --jobs "$JOBS" --capacity "$CAPACITY"

echo "== start rushd =="
"$RUSHD" --socket "$SOCKET" --capacity "$CAPACITY" --client-time \
         --log "$WORK/wal.evlog" --once &
RUSHD_PID=$!
for _ in $(seq 1 50); do
  [[ -S "$SOCKET" ]] && break
  sleep 0.1
done
[[ -S "$SOCKET" ]] || { echo "daemon_smoke: rushd did not come up" >&2; exit 1; }

echo "== play session =="
"$CLIENT" --play "$WORK/ref.evlog" --socket "$SOCKET"

wait "$RUSHD_PID"
RUSHD_PID=""

echo "== replay daemon WAL =="
"$CLIENT" --replay-wal "$WORK/wal.evlog" --trace "$WORK/replayed.csv" \
          --capacity "$CAPACITY"

echo "== verify =="
cmp "$WORK/ref.evlog" "$WORK/wal.evlog" || {
  echo "daemon_smoke: FAIL — daemon WAL differs from reference event log" >&2
  exit 1
}
diff "$WORK/ref.csv" "$WORK/replayed.csv" > /dev/null || {
  echo "daemon_smoke: FAIL — replayed trace differs from simulator reference" >&2
  exit 1
}
echo "daemon_smoke: OK — WAL and replayed trace byte-identical to reference"
