// rushd_client — submit jobs to a running rushd and stream back its
// per-wave grants and completion-time predictions (README "Running rushd").
//
//   build/examples/rushd_client [options]
//     --socket PATH        connect over a Unix socket
//     --tcp PORT           connect over loopback TCP instead
//     --jobs FILE          XML job configuration            (examples/jobs.xml)
//     --capacity N         containers (offline modes)       (6)
//     --record-reference F run the in-process simulator on --jobs and write
//                          its event log to F (no daemon needed)
//     --play F             drive the daemon with a recorded event log; the
//                          daemon must run with --client-time
//     --replay-wal F       replay a daemon WAL offline through the engine
//     --trace F            write the run's trace CSV (reference/replay modes)
//
// Default mode connects, submits every job from the XML file, and acts as
// the cluster: each streamed grant is acknowledged with a task completion
// (runtime = the job's task-seconds), so the whole session fast-forwards
// while printing the scheduler's eta_i predictions per wave.
//
// The CI smoke session (scripts/daemon_smoke.sh) chains the other modes:
// record a reference log, --play it into rushd --client-time, then
// --replay-wal the daemon's own WAL and diff the traces — byte-identical
// by the engine's determinism guarantee (DESIGN.md §5j).

#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/config/job_config.h"
#include "src/config/xml.h"
#include "src/core/rush_scheduler.h"
#include "src/daemon/protocol.h"
#include "src/engine/event_log.h"
#include "src/engine/replay.h"
#include "src/engine/simulation.h"
#include "src/metrics/trace.h"

using namespace rush;

namespace {

struct Options {
  std::optional<std::string> socket_path;
  std::optional<int> tcp_port;
  std::string jobs_path = "examples/jobs.xml";
  int capacity = 6;
  std::optional<std::string> record_reference;
  std::optional<std::string> play;
  std::optional<std::string> replay_wal;
  std::optional<std::string> trace_path;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  const auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << '\n';
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--socket") {
      opt.socket_path = need_value(i);
    } else if (flag == "--tcp") {
      opt.tcp_port = std::atoi(need_value(i).c_str());
    } else if (flag == "--jobs") {
      opt.jobs_path = need_value(i);
    } else if (flag == "--capacity") {
      opt.capacity = std::atoi(need_value(i).c_str());
    } else if (flag == "--record-reference") {
      opt.record_reference = need_value(i);
    } else if (flag == "--play") {
      opt.play = need_value(i);
    } else if (flag == "--replay-wal") {
      opt.replay_wal = need_value(i);
    } else if (flag == "--trace") {
      opt.trace_path = need_value(i);
    } else {
      std::cerr << "unknown option " << flag << " (see file header for usage)\n";
      std::exit(2);
    }
  }
  return opt;
}

/// Jobs from the XML file as simulation specs, sorted by arrival so the
/// simulator's submission-order ids equal the daemon's receipt-order ids.
std::vector<JobSpec> load_specs(const std::string& path) {
  std::vector<JobSpec> specs;
  for (const JobConfig& config : parse_jobs_config(parse_xml_file(path))) {
    JobSpec spec;
    spec.name = config.name;
    spec.arrival = config.arrival;
    spec.budget = config.budget;
    spec.priority = config.priority;
    spec.beta = config.beta;
    spec.utility_kind = config.utility_kind;
    spec.sensitivity = config.sensitivity;
    for (int m = 0; m < config.maps; ++m) {
      spec.tasks.push_back(TaskSpec{config.task_seconds, false});
    }
    for (int r = 0; r < config.reduces; ++r) {
      spec.tasks.push_back(TaskSpec{config.task_seconds, true});
    }
    specs.push_back(std::move(spec));
  }
  std::stable_sort(specs.begin(), specs.end(),
                   [](const JobSpec& a, const JobSpec& b) { return a.arrival < b.arrival; });
  return specs;
}

struct RecordingSink final : EngineSink {
  explicit RecordingSink(const std::string& path) : log(path) {}
  void on_event(const EngineEvent& event) override { log.append(event); }
  EventLogWriter log;
};

/// --record-reference: deterministic in-process run (no noise, no failures,
/// unit-speed containers) whose event log a --client-time daemon session
/// reproduces exactly.
int record_reference(const Options& opt) {
  EngineSimulationConfig config;
  config.nodes = homogeneous_nodes(1, opt.capacity);
  config.runtime_noise_sigma = 0.0;
  config.task_failure_probability = 0.0;
  config.seed = 1;
  RushScheduler scheduler;
  EngineSimulation simulation(config, scheduler);
  TraceRecorder trace;
  simulation.set_observer(&trace);
  RecordingSink sink(*opt.record_reference);
  simulation.set_sink(&sink);
  for (JobSpec spec : load_specs(opt.jobs_path)) simulation.submit(std::move(spec));
  const RunResult result = simulation.run();
  if (opt.trace_path) trace.write_csv(*opt.trace_path);
  std::cout << "reference: " << result.jobs.size() << " jobs, "
            << sink.log.records_written() << " events -> " << *opt.record_reference
            << ", makespan " << result.makespan << " s\n";
  return result.completed ? 0 : 1;
}

/// --replay-wal: re-derive a session's full trace from its write-ahead log.
int replay_wal(const Options& opt) {
  const std::vector<EngineEvent> events = read_event_log(*opt.replay_wal);
  RushScheduler scheduler;
  TraceRecorder trace;
  const RunResult result =
      replay_events(EngineConfig{opt.capacity, false}, scheduler, events, &trace);
  if (opt.trace_path) trace.write_csv(*opt.trace_path);
  std::cout << "replayed " << events.size() << " events: " << result.jobs.size()
            << " jobs, " << result.assignments << " assignments, makespan "
            << result.makespan << " s\n";
  return 0;
}

// ---------- socket plumbing ----------

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool write_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

class Connection {
 public:
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection() { ::close(fd_); }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  bool send(const ClientMessage& message) { return write_all(fd_, encode_frame(message)); }

  /// Blocks for the next server message; false on EOF / protocol error.
  bool receive(ServerMessage& message) {
    std::string body;
    while (!buffer_.next(body)) {
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    }
    message = decode_server_message(body);
    return true;
  }

 private:
  int fd_;
  FrameBuffer buffer_;
};

/// Opens the session: announce our kProtocolVersion, await the daemon's
/// kHelloOk.  A version-skewed daemon answers with kError and hangs up.
bool handshake(Connection& connection) {
  ClientMessage hello;
  hello.kind = ClientMessage::Kind::kHello;
  hello.protocol_version = kProtocolVersion;
  if (!connection.send(hello)) {
    std::cerr << "rushd_client: connection lost during handshake\n";
    return false;
  }
  ServerMessage reply;
  if (!connection.receive(reply)) {
    std::cerr << "rushd_client: daemon hung up during handshake\n";
    return false;
  }
  if (reply.kind != ServerMessage::Kind::kHelloOk) {
    std::cerr << "rushd_client: handshake refused (" << server_kind_name(reply.kind)
              << (reply.text.empty() ? "" : ": " + reply.text) << ")\n";
    return false;
  }
  return true;
}

void print_wave(const EngineWave& wave) {
  std::cout << "wave " << wave.index << " @ " << wave.now << " s: "
            << wave.assignments.size() << " grant(s), free "
            << wave.free_before << " -> " << wave.free_after << '\n';
  for (const EnginePrediction& p : wave.predictions) {
    std::cout << "  job " << p.id << " eta ";
    if (p.impossible) {
      std::cout << "impossible (target " << p.target_completion << " s)";
    } else {
      std::cout << p.eta << " s (target " << p.target_completion << " s, wants "
                << p.desired_containers << " containers)";
    }
    std::cout << '\n';
  }
}

/// --play: feed a recorded event log to a --client-time daemon verbatim.
/// Completions and frees come from the recording, so the daemon re-derives
/// the reference schedule decision-for-decision.
int play_recording(Connection& connection, const Options& opt) {
  const std::vector<EngineEvent> events = read_event_log(*opt.play);
  std::size_t waves = 0;
  for (const EngineEvent& event : events) {
    ClientMessage message;
    message.time = event.time;
    switch (event.kind) {
      case EngineEvent::Kind::kJobSubmitted:
        message.kind = ClientMessage::Kind::kSubmitJob;
        message.job = event.job;
        break;
      case EngineEvent::Kind::kTaskFinished:
        message.kind = ClientMessage::Kind::kTaskFinished;
        message.container = event.container;
        message.runtime = event.runtime;
        break;
      case EngineEvent::Kind::kContainerFreed:
        message.kind = ClientMessage::Kind::kContainerFreed;
        message.container = event.container;
        message.wasted = event.wasted;
        break;
      case EngineEvent::Kind::kSnapshotRequested:
        message.kind = ClientMessage::Kind::kSnapshotRequest;
        break;
    }
    if (!connection.send(message)) {
      std::cerr << "rushd_client: connection lost\n";
      return 1;
    }
    // One round-trip per submission keeps acks readable; waves stream back
    // asynchronously and are drained before shutdown.
    if (message.kind == ClientMessage::Kind::kSubmitJob) {
      ServerMessage response;
      if (!connection.receive(response)) return 1;
      if (response.kind == ServerMessage::Kind::kJobAccepted) {
        std::cout << "accepted job " << response.job_id << " @ " << response.time
                  << " s\n";
      } else if (response.kind == ServerMessage::Kind::kError) {
        std::cerr << "rushd error: " << response.text << '\n';
        return 1;
      } else if (response.kind == ServerMessage::Kind::kWave) {
        ++waves;
      }
    }
  }
  ClientMessage shutdown;
  shutdown.kind = ClientMessage::Kind::kShutdown;
  shutdown.time = events.empty() ? 0.0 : events.back().time;
  if (!connection.send(shutdown)) return 1;
  ServerMessage response;
  while (connection.receive(response)) {
    if (response.kind == ServerMessage::Kind::kWave) ++waves;
    if (response.kind == ServerMessage::Kind::kGoodbye) break;
    if (response.kind == ServerMessage::Kind::kError) {
      std::cerr << "rushd error: " << response.text << '\n';
      return 1;
    }
  }
  std::cout << "played " << events.size() << " events; daemon streamed " << waves
            << " wave(s)\n";
  return 0;
}

/// Default mode: live session.  Submit the XML jobs, then act as the
/// cluster — every grant is completed with the job's nominal task runtime —
/// until all submitted work is done.
int live_session(Connection& connection, const Options& opt) {
  const std::vector<JobSpec> specs = load_specs(opt.jobs_path);
  std::map<JobId, Seconds> task_seconds;
  long remaining_tasks = 0;

  // Act as the cluster for one wave: every grant is completed with the
  // job's nominal task runtime.
  const auto complete_wave = [&](const EngineWave& wave) -> bool {
    print_wave(wave);
    for (const EngineAssignment& grant : wave.assignments) {
      ClientMessage finished;
      finished.kind = ClientMessage::Kind::kTaskFinished;
      finished.container = grant.container;
      finished.runtime = task_seconds[grant.job];
      if (!connection.send(finished)) return false;
      --remaining_tasks;
    }
    return true;
  };

  for (const JobSpec& spec : specs) {
    ClientMessage submit;
    submit.kind = ClientMessage::Kind::kSubmitJob;
    for (const JobConfig& config : parse_jobs_config(parse_xml_file(opt.jobs_path))) {
      if (config.name == spec.name) submit.job = config;
    }
    if (!connection.send(submit)) return 1;
    // Under wall-clock stamping the daemon may flush the previous
    // arrival's dispatch wave before acking this submit (arrivals are
    // flush-then-dispatch), so drain waves until the ack arrives.
    ServerMessage response;
    for (;;) {
      if (!connection.receive(response)) return 1;
      if (response.kind != ServerMessage::Kind::kWave) break;
      if (!complete_wave(response.wave)) return 1;
    }
    if (response.kind != ServerMessage::Kind::kJobAccepted) {
      std::cerr << "rushd rejected " << spec.name << ": " << response.text << '\n';
      return 1;
    }
    std::cout << "submitted " << spec.name << " as job " << response.job_id << '\n';
    task_seconds[response.job_id] = submit.job.task_seconds;
    remaining_tasks += submit.job.maps + submit.job.reduces;
  }

  ServerMessage message;
  while (remaining_tasks > 0 && connection.receive(message)) {
    if (message.kind == ServerMessage::Kind::kError) {
      std::cerr << "rushd error: " << message.text << '\n';
      return 1;
    }
    if (message.kind != ServerMessage::Kind::kWave) continue;
    if (!complete_wave(message.wave)) return 1;
  }

  ClientMessage shutdown;
  shutdown.kind = ClientMessage::Kind::kShutdown;
  if (!connection.send(shutdown)) return 1;
  while (connection.receive(message)) {
    if (message.kind == ServerMessage::Kind::kWave) print_wave(message.wave);
    if (message.kind == ServerMessage::Kind::kGoodbye) break;
  }
  std::cout << "all jobs complete; daemon said goodbye\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  try {
    if (opt.record_reference) return record_reference(opt);
    if (opt.replay_wal) return replay_wal(opt);

    int fd = -1;
    if (opt.socket_path) {
      fd = connect_unix(*opt.socket_path);
    } else if (opt.tcp_port) {
      fd = connect_tcp(*opt.tcp_port);
    } else {
      std::cerr << "need --socket PATH or --tcp PORT (or an offline mode)\n";
      return 2;
    }
    if (fd < 0) {
      std::cerr << "rushd_client: cannot connect\n";
      return 1;
    }
    Connection connection(fd);
    if (!handshake(connection)) return 1;
    return opt.play ? play_recording(connection, opt) : live_session(connection, opt);
  } catch (const std::exception& error) {
    std::cerr << "rushd_client: " << error.what() << '\n';
    return 1;
  }
}
