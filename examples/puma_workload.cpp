// PUMA-mix workload comparison — a command-line version of the paper's
// §V-B evaluation.
//
//   build/examples/puma_workload [budget_ratio] [num_jobs] [seed]
//
// Runs the same workload under RUSH and every baseline and prints the
// utility / latency summary plus an ASCII utility CDF per scheduler.

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/experiments/experiment.h"
#include "src/metrics/report.h"
#include "src/metrics/text_table.h"
#include "src/stats/summary.h"

using namespace rush;

int main(int argc, char** argv) {
  ExperimentConfig config;
  config.budget_ratio = argc > 1 ? std::atof(argv[1]) : 1.5;
  config.num_jobs = argc > 2 ? std::atoi(argv[2]) : 60;
  config.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 99;

  std::cout << "PUMA-mix workload: " << config.num_jobs << " jobs, budget ratio "
            << config.budget_ratio << ", 48 containers, seed " << config.seed
            << "\n\n";

  TextTable table({"scheduler", "mean-util", "zero-util %", "budget-hit %",
                   "median-latency", "events"});
  for (const std::string name : {"RUSH", "EDF", "FIFO", "RRH", "Fair"}) {
    const RunResult result = run_experiment(name, config);
    double mean = 0.0;
    for (double u : achieved_utilities(result.jobs)) mean += u;
    mean /= static_cast<double>(result.jobs.size());
    const auto lat = deadline_job_latencies(result.jobs);
    table.add_row({name, TextTable::num(mean, 2),
                   TextTable::num(100.0 * zero_utility_fraction(result.jobs), 1),
                   TextTable::num(100.0 * budget_hit_fraction(result.jobs), 1),
                   lat.empty() ? "-" : TextTable::num(boxplot_stats(lat).median, 0),
                   std::to_string(result.scheduling_events)});
  }
  table.print(std::cout);

  std::cout << "\nNormalised utility CDF (fraction of jobs at or below x):\n";
  for (const std::string name : {"RUSH", "FIFO"}) {
    const RunResult result = run_experiment(name, config);
    const EmpiricalCdf cdf(normalized_utilities(result.jobs));
    std::cout << "\n  " << name << '\n';
    for (double x : {0.0, 0.25, 0.5, 0.75, 0.95}) {
      std::cout << "    u<=" << TextTable::num(x, 2) << "  " << ascii_bar(cdf.at(x), 40)
                << ' ' << TextTable::num(100.0 * cdf.at(x), 0) << "%\n";
    }
  }
  std::cout << "\n(RUSH keeps most mass at high utility; FIFO's serial head-of-line\n"
               "blocking pushes a large share of jobs to zero.)\n";
  return 0;
}
