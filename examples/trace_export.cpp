// Trace-driven analysis: record every scheduling event of a RUSH run,
// export it to CSV, and print utilisation plus a per-container timeline
// summary — the raw material for Gantt-style plots.
//
//   build/examples/trace_export [output.csv]

#include <iostream>
#include <map>
#include <string>

#include "src/cluster/cluster.h"
#include "src/core/rush_scheduler.h"
#include "src/metrics/csv.h"
#include "src/metrics/gantt.h"
#include "src/metrics/text_table.h"
#include "src/metrics/trace.h"
#include "src/workload/generator.h"

using namespace rush;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : output_path("rush_trace.csv");

  RushScheduler scheduler;
  ClusterConfig cluster_config;
  cluster_config.nodes = homogeneous_nodes(2, 6);  // 12 containers
  cluster_config.runtime_noise_sigma = 0.25;
  cluster_config.task_failure_probability = 0.05;  // a little chaos
  cluster_config.seed = 21;
  Cluster cluster(cluster_config, scheduler);

  TraceRecorder trace;
  cluster.set_observer(&trace);

  WorkloadConfig workload;
  workload.num_jobs = 12;
  workload.mean_interarrival = 60.0;
  workload.min_gigabytes = 0.5;
  workload.max_gigabytes = 2.0;
  workload.budget_ratio = 1.5;
  workload.benchmark_capacity = 12;
  workload.seed = 21;
  for (JobSpec& spec : generate_workload(workload)) cluster.submit(std::move(spec));

  const RunResult result = cluster.run();
  trace.write_csv(path);

  std::cout << "recorded " << trace.events().size() << " events -> " << path << "\n\n";
  TextTable summary({"metric", "value"});
  summary.add_row({"jobs", std::to_string(result.jobs.size())});
  summary.add_row({"task starts", std::to_string(trace.count(TraceKind::kTaskStart))});
  summary.add_row({"task failures", std::to_string(trace.count(TraceKind::kTaskFailure))});
  summary.add_row({"busy container-seconds", TextTable::num(trace.busy_seconds(), 0)});
  summary.add_row({"wasted container-seconds", TextTable::num(trace.wasted_seconds(), 0)});
  summary.add_row({"utilization", TextTable::num(100.0 * trace.utilization(12), 1) + "%"});
  summary.add_row({"makespan", TextTable::num(result.makespan, 0) + " s"});
  summary.print(std::cout);

  // Per-container share of work: how evenly RUSH spreads the load.
  std::map<int, double> per_container;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceKind::kTaskFinish) per_container[e.container] += e.value;
  }
  std::cout << "\nper-container busy seconds:\n";
  for (const auto& [container, busy] : per_container) {
    std::cout << "  c" << container << "  "
              << ascii_bar(busy / (trace.busy_seconds() / per_container.size()) / 2.0, 30)
              << ' ' << TextTable::num(busy, 0) << "s\n";
  }

  std::cout << "\ncluster Gantt (who held which container when):\n"
            << render_gantt(trace, 12);
  return 0;
}
