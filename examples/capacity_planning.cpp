// Capacity planning with the admission-control API.
//
//   build/examples/capacity_planning
//
// The RUSH web UI (paper Fig 2) highlights jobs that cannot meet any useful
// deadline and asks users to resubmit.  This example closes that loop
// programmatically: given a cluster already running three jobs, it asks,
// for a series of candidate jobs, (a) would RUSH admit this budget, (b) who
// would be hurt, and (c) what is the earliest budget RUSH could actually
// promise.

#include <cmath>
#include <iostream>
#include <memory>

#include "src/core/admission.h"
#include "src/metrics/text_table.h"

using namespace rush;

namespace {

PlannerJob make_job(JobId id, double demand_cs, double uncertainty,
                    const UtilityFunction* utility, Seconds task_runtime = 15.0) {
  PlannerJob job;
  job.id = id;
  job.set_demand(QuantizedPmf::gaussian(
      demand_cs, uncertainty, 256, (demand_cs + 6 * uncertainty) * 1.25 / 256.0));
  job.mean_runtime = task_runtime;
  job.samples = 40;
  job.utility = utility;
  return job;
}

}  // namespace

int main() {
  const ContainerCount capacity = 16;
  AdmissionController controller{RushConfig{}};

  // The cluster's current tenants: a tight analytics job, a medium ETL job,
  // and a background compaction that does not care about time.
  const SigmoidUtility analytics_u(240.0, 5.0, 0.1);
  const SigmoidUtility etl_u(900.0, 3.0, 0.01);
  const ConstantUtility compaction_u(1.0);
  std::vector<PlannerJob> active = {
      make_job(0, 2400.0, 150.0, &analytics_u),
      make_job(1, 4000.0, 300.0, &etl_u),
      make_job(2, 6000.0, 200.0, &compaction_u),
  };

  std::cout << "cluster: " << capacity << " containers, 3 active jobs "
            << "(analytics B=240s, etl B=900s, compaction untimed)\n\n";

  TextTable table({"candidate", "demand(cs)", "budget", "admit?", "proj. utility",
                   "proj. finish", "degrades"});
  struct Candidate {
    const char* name;
    double demand;
    Seconds budget;
    double beta;
  };
  for (const Candidate& c : {Candidate{"small-urgent", 600.0, 120.0, 0.3},
                             Candidate{"medium", 2000.0, 400.0, 0.05},
                             Candidate{"huge-urgent", 8000.0, 300.0, 0.3},
                             Candidate{"huge-patient", 8000.0, 3000.0, 0.01}}) {
    const SigmoidUtility utility(c.budget, 4.0, c.beta);
    const PlannerJob candidate = make_job(99, c.demand, 0.1 * c.demand, &utility);
    const auto verdict = controller.evaluate(active, candidate, capacity, 0.0);
    std::string degrades;
    for (JobId id : verdict.degraded) degrades += "#" + std::to_string(id) + " ";
    table.add_row({c.name, TextTable::num(c.demand, 0), TextTable::num(c.budget, 0),
                   verdict.admit ? "yes" : "NO",
                   TextTable::num(verdict.candidate_utility, 2),
                   TextTable::num(verdict.candidate_completion, 0),
                   degrades.empty() ? "-" : degrades});
  }
  table.print(std::cout);

  // "What completion time can you promise me?" for the rejected huge job.
  const PlannerJob shape = make_job(99, 8000.0, 800.0, nullptr);
  const Seconds promise =
      controller.earliest_feasible_budget(active, shape, capacity, 0.0, 4.0, 0.05);
  std::cout << "\nearliest budget RUSH would accept for the 8000cs job: ";
  if (std::isfinite(promise)) {
    std::cout << TextTable::num(promise, 0) << " s\n";
  } else {
    std::cout << "none (cluster cannot absorb it)\n";
  }
  std::cout << "-> resubmit 'huge-urgent' with that budget instead of 300 s.\n";
  return 0;
}
