// simulate — the command-line front end to the whole library.
//
//   build/examples/simulate [options]
//     --scheduler NAME     RUSH | EDF | FIFO | RRH | Fair        (RUSH)
//     --jobs N             workload size                         (60)
//     --ratio R            budget = R x measured benchmark       (1.5)
//     --seed S             workload + cluster seed               (1)
//     --theta T            RUSH percentile requirement           (0.9)
//     --delta D            RUSH entropy threshold                (0.7)
//     --phase-aware        per-phase demand estimation           (off)
//     --failure-p P        task attempt failure probability      (0)
//     --speculation        enable backup attempts                (off)
//     --save-workload F    write the generated workload XML to F
//     --load-workload F    run a previously saved workload instead
//     --trace F            write the execution trace CSV to F
//     --event-log F        record the engine event log (WAL format) to F
//
// Runs on the event-driven SchedulerEngine via EngineSimulation (DESIGN.md
// §5j), which reproduces the classic Cluster simulation bit-for-bit; the
// recorded event log replays through rushd / replay_events to the same
// trace.  --speculation still runs the in-process Cluster — backup
// attempts are the one feature the engine path does not model.
//
// Examples:
//   simulate --scheduler FIFO --ratio 1.0 --jobs 100
//   simulate --save-workload w.xml
//   simulate --load-workload w.xml --scheduler EDF --trace edf.csv
//   simulate --jobs 20 --event-log run.evlog

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "src/engine/event_log.h"
#include "src/engine/simulation.h"
#include "src/experiments/experiment.h"
#include "src/metrics/report.h"
#include "src/metrics/text_table.h"
#include "src/metrics/trace.h"
#include "src/stats/summary.h"
#include "src/workload/generator.h"
#include "src/workload/workload_io.h"

using namespace rush;

namespace {

struct Options {
  std::string scheduler = "RUSH";
  int jobs = 60;
  double ratio = 1.5;
  std::uint64_t seed = 1;
  double theta = 0.9;
  double delta = 0.7;
  bool phase_aware = false;
  double failure_p = 0.0;
  bool speculation = false;
  std::optional<std::string> save_workload;
  std::optional<std::string> load_workload;
  std::optional<std::string> trace_path;
  std::optional<std::string> event_log_path;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  const auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << '\n';
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--scheduler") {
      opt.scheduler = need_value(i);
    } else if (flag == "--jobs") {
      opt.jobs = std::atoi(need_value(i).c_str());
    } else if (flag == "--ratio") {
      opt.ratio = std::atof(need_value(i).c_str());
    } else if (flag == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(need_value(i).c_str()));
    } else if (flag == "--theta") {
      opt.theta = std::atof(need_value(i).c_str());
    } else if (flag == "--delta") {
      opt.delta = std::atof(need_value(i).c_str());
    } else if (flag == "--phase-aware") {
      opt.phase_aware = true;
    } else if (flag == "--failure-p") {
      opt.failure_p = std::atof(need_value(i).c_str());
    } else if (flag == "--speculation") {
      opt.speculation = true;
    } else if (flag == "--save-workload") {
      opt.save_workload = need_value(i);
    } else if (flag == "--load-workload") {
      opt.load_workload = need_value(i);
    } else if (flag == "--trace") {
      opt.trace_path = need_value(i);
    } else if (flag == "--event-log") {
      opt.event_log_path = need_value(i);
    } else {
      std::cerr << "unknown option " << flag << " (see file header for usage)\n";
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  const std::vector<Node> nodes = paper_testbed_nodes();
  const double noise_sigma = 0.25;

  // Assemble the workload: generated (and optionally archived) or loaded.
  std::vector<JobSpec> specs;
  if (opt.load_workload) {
    specs = load_workload(*opt.load_workload);
    std::cout << "loaded " << specs.size() << " jobs from " << *opt.load_workload
              << '\n';
  } else {
    WorkloadConfig workload;
    workload.num_jobs = opt.jobs;
    workload.budget_ratio = opt.ratio;
    workload.benchmark_capacity = 48;
    workload.benchmark_speed = budget_calibration(nodes, noise_sigma);
    workload.seed = opt.seed;
    specs = generate_workload(workload);
    std::uint64_t bench_seed = opt.seed + 1000003;
    for (JobSpec& spec : specs) {
      const Seconds bench = measure_benchmark(spec, nodes, noise_sigma, bench_seed++);
      apply_sensitivity(spec, spec.sensitivity, opt.ratio * bench, spec.priority);
    }
    if (opt.save_workload) {
      save_workload(specs, *opt.save_workload);
      std::cout << "saved workload to " << *opt.save_workload << '\n';
    }
  }

  RushConfig rush_config;
  rush_config.theta = opt.theta;
  rush_config.delta = opt.delta;
  rush_config.phase_aware_estimation = opt.phase_aware;
  const auto scheduler = make_named_scheduler(opt.scheduler, rush_config);

  TraceRecorder trace;
  RunResult result;
  if (opt.speculation) {
    // Backup attempts need the cluster's kill/speculate machinery, which
    // the replayable engine path deliberately leaves out.
    if (opt.event_log_path) {
      std::cerr << "--event-log requires the engine path; drop --speculation\n";
      return 2;
    }
    ClusterConfig cluster_config;
    cluster_config.nodes = nodes;
    cluster_config.runtime_noise_sigma = noise_sigma;
    cluster_config.task_failure_probability = opt.failure_p;
    cluster_config.enable_speculation = true;
    cluster_config.seed = opt.seed + 1;
    Cluster cluster(cluster_config, *scheduler);
    if (opt.trace_path) cluster.set_observer(&trace);
    for (JobSpec& spec : specs) cluster.submit(std::move(spec));
    result = cluster.run();
  } else {
    EngineSimulationConfig sim_config;
    sim_config.nodes = nodes;
    sim_config.runtime_noise_sigma = noise_sigma;
    sim_config.task_failure_probability = opt.failure_p;
    sim_config.seed = opt.seed + 1;
    EngineSimulation simulation(sim_config, *scheduler);
    if (opt.trace_path) simulation.set_observer(&trace);
    struct LogSink final : EngineSink {
      explicit LogSink(const std::string& path) : log(path) {}
      void on_event(const EngineEvent& event) override { log.append(event); }
      EventLogWriter log;
    };
    std::optional<LogSink> event_log;
    if (opt.event_log_path) {
      event_log.emplace(*opt.event_log_path);
      simulation.set_sink(&*event_log);
    }
    for (JobSpec& spec : specs) simulation.submit(std::move(spec));
    result = simulation.run();
    if (event_log) {
      std::cout << "event log (" << event_log->log.records_written()
                << " events) -> " << *opt.event_log_path << '\n';
    }
  }

  if (opt.trace_path) {
    trace.write_csv(*opt.trace_path);
    std::cout << "trace (" << trace.events().size() << " events) -> "
              << *opt.trace_path << '\n';
  }

  double mean_util = 0.0;
  for (double u : achieved_utilities(result.jobs)) mean_util += u;
  mean_util /= static_cast<double>(result.jobs.size());
  const auto lat = deadline_job_latencies(result.jobs);

  std::cout << '\n' << opt.scheduler << " on " << result.jobs.size()
            << " jobs (ratio " << opt.ratio << ", seed " << opt.seed << ")\n";
  TextTable table({"metric", "value"});
  table.add_row({"completed", result.completed ? "all" : "TIMED OUT"});
  table.add_row({"mean utility", TextTable::num(mean_util, 3)});
  table.add_row(
      {"zero-utility %", TextTable::num(100.0 * zero_utility_fraction(result.jobs), 1)});
  table.add_row(
      {"budget hit %", TextTable::num(100.0 * budget_hit_fraction(result.jobs), 1)});
  if (!lat.empty()) {
    const auto box = boxplot_stats(lat);
    table.add_row({"latency median / Q3",
                   TextTable::num(box.median, 0) + " / " + TextTable::num(box.q3, 0)});
  }
  table.add_row({"makespan", TextTable::num(result.makespan, 0) + " s"});
  table.add_row({"assignments", std::to_string(result.assignments)});
  table.add_row({"task failures", std::to_string(result.task_failures)});
  table.add_row({"speculative attempts", std::to_string(result.speculative_attempts)});
  table.print(std::cout);
  return result.completed ? 0 : 1;
}
