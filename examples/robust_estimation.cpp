// Robust demand estimation walkthrough (the paper's §III machinery, solo).
//
//   build/examples/robust_estimation
//
// Simulates a job of 60 tasks whose true runtime distribution is N(50, 15^2)
// seconds.  As completed-task samples stream into the Gaussian distribution
// estimator, prints the reference demand quantile, the robust demand eta
// for several entropy thresholds, and whether each would have covered the
// job's realised demand — Fig 3's mechanism, one row per sample count.

#include <iostream>

#include "src/common/rng.h"
#include "src/estimator/distribution_estimator.h"
#include "src/metrics/text_table.h"
#include "src/robust/rem.h"
#include "src/robust/wcde.h"

using namespace rush;

int main() {
  const double true_mean = 50.0, true_std = 15.0;
  const int tasks = 60;
  const double theta = 0.9;

  Rng rng(11);
  // The job's realised total demand (what the cluster will actually charge).
  double realized = 0.0;
  std::vector<double> runtimes;
  for (int t = 0; t < tasks; ++t) {
    runtimes.push_back(rng.normal_at_least(true_mean, true_std, 1.0));
    realized += runtimes.back();
  }
  std::cout << "true per-task runtime ~ N(" << true_mean << ", " << true_std
            << "^2), realised total demand = " << TextTable::num(realized, 0)
            << " container-seconds\n\n";

  GaussianEstimator estimator;
  TextTable table({"samples", "mean-est", "ref quantile(0.9)", "eta d=0.1",
                   "eta d=0.7", "eta d=1.5", "covered (d=0.7)"});
  int fed = 0;
  for (int checkpoint : {3, 5, 10, 20, 30, 45, 60}) {
    while (fed < checkpoint) estimator.observe(runtimes[static_cast<std::size_t>(fed++)]);
    const int remaining = tasks;  // estimate the whole job, as in Fig 3
    const QuantizedPmf phi = estimator.remaining_demand(remaining, 256);
    std::vector<std::string> row = {std::to_string(checkpoint),
                                    TextTable::num(estimator.mean_runtime(), 1),
                                    TextTable::num(phi.quantile_value(Probability(theta)), 0)};
    double eta_07 = 0.0;
    for (double delta : {0.1, 0.7, 1.5}) {
      const double eta = solve_wcde(phi, Probability(theta), KlRadius(delta)).eta;
      if (delta == 0.7) eta_07 = eta;
      row.push_back(TextTable::num(eta, 0));
    }
    row.push_back(eta_07 >= realized ? "yes" : "NO");
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nThe REM closed form behind eta (Algorithm 1): worst-case\n"
               "distributions concentrate exactly theta mass below the probe\n"
               "bin.  minKL collapses to the binary KL divergence, e.g.\n";
  for (double s : {0.92, 0.97, 0.995}) {
    std::cout << "  CDF_phi(L) = " << s << "  ->  minKL = "
              << TextTable::num(rem_min_kl(Probability(s), Probability(theta)), 4) << '\n';
  }
  std::cout << "A level L is robust-feasible while minKL <= delta.\n";
  return 0;
}
