// Quickstart: schedule three jobs with different time-sensitivity on a
// simulated 8-container cluster using the RUSH scheduler.
//
//   build/examples/quickstart
//
// Walks the whole public API surface: build JobSpecs, pick a utility class
// per job, run the event-driven engine with RushScheduler, and read the
// results.  EngineSimulation is the virtual-clock event source on top of
// SchedulerEngine — the same engine rushd feeds from a socket (DESIGN.md
// §5j) — and reproduces the classic Cluster simulation bit-for-bit.

#include <iostream>

#include "src/core/rush_scheduler.h"
#include "src/engine/simulation.h"
#include "src/metrics/text_table.h"

using namespace rush;

namespace {

JobSpec make_job(const std::string& name, Seconds arrival, Seconds budget,
                 const std::string& utility_kind, double beta, Priority priority,
                 int maps, Seconds task_seconds) {
  JobSpec spec;
  spec.name = name;
  spec.arrival = arrival;
  spec.budget = budget;
  spec.utility_kind = utility_kind;
  spec.beta = beta;
  spec.priority = priority;
  for (int m = 0; m < maps; ++m) spec.tasks.push_back({task_seconds, false});
  spec.tasks.push_back({task_seconds, true});  // one reduce behind the barrier
  return spec;
}

}  // namespace

int main() {
  // A RUSH scheduler with the paper's recommended settings: 90th-percentile
  // demand coverage within a KL ball of radius 0.7 around the estimate.
  RushConfig config;
  config.theta = 0.9;
  config.delta = 0.7;
  config.prior.mean_runtime = 20.0;  // what we expect a task to take, cold
  config.prior.stddev_runtime = 8.0;
  RushScheduler scheduler(config);

  // An 8-container cluster with 20% lognormal runtime noise — the
  // "uncertainty in the jobs' runtime" the scheduler must absorb.
  EngineSimulationConfig sim_config;
  sim_config.nodes = homogeneous_nodes(2, 4);
  sim_config.runtime_noise_sigma = 0.2;
  sim_config.seed = 7;
  EngineSimulation simulation(sim_config, scheduler);

  // Three jobs: a deadline-critical one, a gently time-sensitive one, and a
  // batch job that does not care when it finishes.
  simulation.submit(make_job("video-transcode", 0.0, 120.0, "sigmoid", 0.5, 5.0, 12, 20.0));
  simulation.submit(make_job("daily-report", 10.0, 400.0, "linear", 0.01, 3.0, 10, 20.0));
  simulation.submit(make_job("log-archive", 20.0, 0.0, "constant", 1.0, 1.0, 14, 20.0));

  const RunResult result = simulation.run();

  TextTable table({"job", "sensitivity", "budget", "completed", "latency", "utility"});
  for (const JobRecord& job : result.jobs) {
    table.add_row({job.name, job.budget > 0.0 ? "deadline" : "none",
                   TextTable::num(job.budget, 0), TextTable::num(job.completion, 1),
                   job.budget > 0.0 ? TextTable::num(job.latency(), 1) : "-",
                   TextTable::num(job.utility, 2)});
  }
  table.print(std::cout);
  std::cout << "\nmakespan " << result.makespan << " s, " << result.assignments
            << " container assignments, " << scheduler.plans_computed()
            << " planning passes\n"
            << "Note how the insensitive 'log-archive' job is delayed so the "
               "critical 'video-transcode' job meets its 120 s budget.\n";
  return 0;
}
