// Cluster report — the RUSH-YARN management view (paper Fig 2) on the
// console, driven by the XML job configuration interface (paper §IV).
//
//   build/examples/cluster_report [jobs.xml]
//
// Loads job requirements from XML, runs them under RUSH, and prints the
// projected-completion report the enhanced HTTP interface shows: target
// completion time, utility level, and an IMPOSSIBLE marker (the red row)
// for jobs that cannot finish before their utility hits zero.

#include <iostream>
#include <string>

#include "src/cluster/cluster.h"
#include "src/config/job_config.h"
#include "src/core/rush_scheduler.h"
#include "src/metrics/text_table.h"

using namespace rush;

namespace {

JobSpec to_spec(const JobConfig& config) {
  JobSpec spec;
  spec.name = config.name;
  spec.arrival = config.arrival;
  spec.budget = config.budget;
  spec.priority = config.priority;
  spec.beta = config.beta;
  spec.utility_kind = config.utility_kind;
  for (int m = 0; m < config.maps; ++m) spec.tasks.push_back({config.task_seconds, false});
  for (int r = 0; r < config.reduces; ++r) spec.tasks.push_back({config.task_seconds, true});
  return spec;
}

/// A reporting wrapper: snapshots the RUSH plan at every arrival, the way
/// the web UI refreshes its table.
class ReportingScheduler final : public Scheduler {
 public:
  explicit ReportingScheduler(RushConfig config) : inner_(std::move(config)) {}

  std::string name() const override { return inner_.name(); }
  std::optional<JobId> assign_container(const ClusterView& view) override {
    return inner_.assign_container(view);
  }
  void on_task_finished(const ClusterView& view, JobId job, Seconds runtime,
                        bool is_reduce) override {
    inner_.on_task_finished(view, job, runtime, is_reduce);
  }
  void on_job_finished(const ClusterView& view, JobId job) override {
    inner_.on_job_finished(view, job);
  }
  void on_job_arrival(const ClusterView& view, JobId job) override {
    inner_.on_job_arrival(view, job);
    // Force a fresh plan so the report reflects the new arrival.
    if (view.free_containers == 0) return print_report(view);
    print_report(view);
  }

  void print_report(const ClusterView& view) {
    (void)inner_.assign_container(view);  // ensures the plan is current
    const Plan& plan = inner_.current_plan();
    std::cout << "\n[t=" << TextTable::num(view.now, 0)
              << "s] projected completion report (" << view.jobs.size()
              << " active jobs)\n";
    TextTable table({"job", "held", "desired", "eta(cs)", "projected-finish",
                     "utility-level", "status"});
    for (const JobView& jv : view.jobs) {
      const PlanEntry* entry = plan.find(jv.id);
      if (entry == nullptr) continue;
      table.add_row({"#" + std::to_string(jv.id), std::to_string(jv.running_tasks),
                     std::to_string(entry->desired_containers),
                     TextTable::num(entry->eta, 0),
                     TextTable::num(entry->target_completion, 0),
                     TextTable::num(entry->utility_level, 2),
                     entry->impossible ? "IMPOSSIBLE (resubmit!)" : "on track"});
    }
    table.print(std::cout);
  }

 private:
  RushScheduler inner_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "examples/jobs.xml";
  std::vector<JobConfig> configs;
  try {
    configs = parse_jobs_config(parse_xml_file(path));
  } catch (const std::exception& e) {
    std::cerr << "failed to load " << path << ": " << e.what() << '\n'
              << "usage: cluster_report [jobs.xml]\n";
    return 1;
  }
  std::cout << "loaded " << configs.size() << " job configurations from " << path
            << '\n';

  RushConfig rush_config;
  rush_config.prior.mean_runtime = 30.0;
  rush_config.prior.stddev_runtime = 10.0;
  ReportingScheduler scheduler(rush_config);

  ClusterConfig cluster_config;
  cluster_config.nodes = homogeneous_nodes(2, 8);  // 16 containers
  cluster_config.runtime_noise_sigma = 0.2;
  cluster_config.seed = 3;
  Cluster cluster(cluster_config, scheduler);
  for (const JobConfig& config : configs) cluster.submit(to_spec(config));

  const RunResult result = cluster.run();

  std::cout << "\n=== final outcomes ===\n";
  TextTable table({"job", "budget", "completed", "latency", "utility"});
  for (const JobRecord& job : result.jobs) {
    table.add_row({job.name, TextTable::num(job.budget, 0),
                   TextTable::num(job.completion, 1),
                   job.budget > 0.0 ? TextTable::num(job.latency(), 1) : "-",
                   TextTable::num(job.utility, 2)});
  }
  table.print(std::cout);
  return 0;
}
