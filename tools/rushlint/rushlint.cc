// rushlint — the repo-specific determinism analyzer (README "Static safety",
// DESIGN.md §5f).
//
// The plan pipeline promises bit-identical output across thread counts,
// warm/cold peeling and dispatch seams.  scripts/lint.sh's grep rules cannot
// see through comments, strings or types, so the checks that need token
// context live here:
//
//   D1  no nondeterminism sources — std::rand/srand, std::random_device,
//       time(nullptr/NULL/0), system_clock/steady_clock/
//       high_resolution_clock — anywhere outside src/common/rng.* and
//       bench/.  Profiling code suppresses per-line with a reason.
//   D2  no iteration over std::unordered_map/unordered_set (range-for,
//       iterator for-loops, equal_range walks) in the plan-affecting
//       directories (src/core, src/tas, src/robust, src/estimator,
//       src/cluster, src/baselines): hash iteration order is unspecified
//       and leaks into anything the loop body touches in order.
//   D3  no std::sort in those directories whose comparator is a single
//       comparison on a double-typed key (Seconds, Utility, ...): doubles
//       tie, std::sort is unstable, so tied elements land in unspecified
//       order — add an id tiebreak or use std::stable_sort.
//   D4  suppressions must parse, carry a non-empty reason, actually
//       suppress something, and stay within the checked-in per-tag budget
//       (tools/rushlint/suppressions.baseline) — the budget can only
//       shrink.
//
// v2 adds the dimensional-safety rules (DESIGN.md §5g):
//
//   D5  no bare `double` declaration of a dimension-bearing name (theta,
//       delta, eta, deadline, ...) in the plan-affecting directories: the
//       name announces a unit, so the declaration must use a unit alias
//       from src/common/types.h or a checked type from src/common/units.h.
//   D6  no `.value()` unwrapping in the plan-affecting directories outside
//       the allowlisted numeric kernels (solve loops in wcde/rem/
//       wcde_cache/slot_mapping/onion_peeling/rush_planner .cc files):
//       arithmetic should stay inside the typed algebra; kernels and
//       serialization edges are where the raw representation escapes.
//   L1  module layering: every `#include "src/<m>/..."` from src/<m'>/
//       must point at a strictly lower-ranked module (or stay inside the
//       module).  The enforced DAG, bottom-up:
//         0 common | 1 stats utility sim lp config | 2 robust estimator
//         tas | 3 cluster | 4 metrics baselines workload core state |
//         5 experiments engine | 6 daemon (src/check is exempt: the
//         invariant auditor is cyclic with cluster by design).  L1 has no
//       suppression tag — a layering violation is always fixed, never
//       waived.
//
// Suppression syntax, on the flagged line or the line directly above:
//   // rushlint: nondeterminism-ok(<reason>)   — D1
//   // rushlint: order-insensitive(<reason>)   — D2
//   // rushlint: float-sort-ok(<reason>)       — D3
//   // rushlint: unit-ok(<reason>)             — D5
//   // rushlint: unit-escape(<reason>)         — D6
//
// Modes:
//   rushlint --repo-root DIR [--baseline FILE]    scan src/, tests/,
//       examples/ under DIR (bench/ is D1-exempt by design and has no
//       plan-affecting code, so it is not scanned)
//   rushlint --self-test DIR                      run the fixture corpus:
//       every file named dN_pos_*/lN_pos_* must fire exactly rule DN/LN
//       and nothing else; every dN_neg_*/lN_neg_* must be silent.  A
//       fixture opts into path-scoped rules (L1, the D6 allowlist) with a
//       `// rushlint-fixture-path: src/...` line.
//   rushlint [--plan-dir] FILE...                 scan explicit files
//
// Output: `file:line: rushlint RULE: message` per finding, or with
// --github the GitHub Actions annotation form
// `::error file=F,line=L::rushlint RULE: message` plus a per-rule
// `::notice` summary, so findings surface inline on the PR diff.
//
// Exit status: 0 clean, 1 findings or budget violations, 2 usage error.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Lexer: tokens + rushlint suppression directives, with comments, string
// literals, char literals and raw strings stripped so rule patterns can
// never match inside them.

struct Token {
  std::string text;
  int line = 0;
};

struct Suppression {
  std::string tag;
  std::string reason;
  int line = 0;        // line the directive comment sits on
  bool malformed = false;
  std::string problem; // set when malformed
  bool used = false;
};

struct FileScan {
  std::string path;  // repo-relative, '/' separators
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  /// Quoted include targets, collected by a raw per-line pass (the lexer
  /// strips string literals, so the token stream cannot carry them).
  std::vector<std::pair<int, std::string>> includes;  // (line, target)
  /// Path a self-test fixture claims to live at (`// rushlint-fixture-path:`)
  /// so path-scoped rules (L1, the D6 kernel allowlist) can be exercised
  /// from the flat fixture directory.  Empty outside self-test fixtures.
  std::string fixture_path;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses `rushlint: tag(reason)` directives out of one line-comment body.
void parse_directives(const std::string& comment, int line,
                      std::vector<Suppression>& out) {
  const std::string marker = "rushlint:";
  std::size_t at = comment.find(marker);
  if (at == std::string::npos) return;
  std::size_t i = at + marker.size();
  while (i < comment.size() && comment[i] == ' ') ++i;
  Suppression s;
  s.line = line;
  while (i < comment.size() &&
         (std::islower(static_cast<unsigned char>(comment[i])) ||
          comment[i] == '-')) {
    s.tag.push_back(comment[i++]);
  }
  if (s.tag.empty() || i >= comment.size() || comment[i] != '(') {
    s.malformed = true;
    s.problem = "directive must read 'rushlint: <tag>(<reason>)'";
    out.push_back(std::move(s));
    return;
  }
  const std::size_t close = comment.rfind(')');
  if (close == std::string::npos || close <= i) {
    s.malformed = true;
    s.problem = "directive is missing its closing ')'";
    out.push_back(std::move(s));
    return;
  }
  s.reason = comment.substr(i + 1, close - i - 1);
  // Trim the reason; an all-whitespace reason is no reason.
  while (!s.reason.empty() && std::isspace(static_cast<unsigned char>(s.reason.front()))) {
    s.reason.erase(s.reason.begin());
  }
  while (!s.reason.empty() && std::isspace(static_cast<unsigned char>(s.reason.back()))) {
    s.reason.pop_back();
  }
  if (s.reason.empty()) {
    s.malformed = true;
    s.problem = "suppression carries no reason";
  }
  out.push_back(std::move(s));
}

FileScan lex_file(const std::string& path, const std::string& content) {
  FileScan scan;
  scan.path = path;
  // Raw per-line pass: include targets for L1 and the fixture-path
  // directive.  Deliberately line-oriented — a commented-out include whose
  // line starts with `//` is skipped, which is the right call for a
  // layering rule (the dependency is gone).
  {
    std::istringstream lines(content);
    std::string raw;
    int ln = 0;
    while (std::getline(lines, raw)) {
      ++ln;
      const std::size_t first = raw.find_first_not_of(" \t");
      if (first != std::string::npos && raw[first] == '#' &&
          raw.find("include", first) != std::string::npos) {
        const std::size_t q1 = raw.find('"', first);
        const std::size_t q2 =
            q1 == std::string::npos ? std::string::npos : raw.find('"', q1 + 1);
        if (q2 != std::string::npos) {
          scan.includes.emplace_back(ln, raw.substr(q1 + 1, q2 - q1 - 1));
        }
      }
      const std::string marker = "rushlint-fixture-path:";
      const std::size_t at = raw.find(marker);
      if (at != std::string::npos) {
        std::string rest = raw.substr(at + marker.size());
        while (!rest.empty() && std::isspace(static_cast<unsigned char>(rest.front()))) {
          rest.erase(rest.begin());
        }
        while (!rest.empty() && std::isspace(static_cast<unsigned char>(rest.back()))) {
          rest.pop_back();
        }
        scan.fixture_path = rest;
      }
    }
  }
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = content.size();
  auto peek = [&](std::size_t off) -> char {
    return i + off < n ? content[i + off] : '\0';
  };
  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      std::size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      parse_directives(content.substr(i + 2, end - i - 2), line,
                       scan.suppressions);
      i = end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      std::size_t j = i + 2;
      while (j + 1 < n && !(content[j] == '*' && content[j + 1] == '/')) {
        if (content[j] == '\n') ++line;
        ++j;
      }
      i = j + 2 <= n ? j + 2 : n;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && content[j] != quote) {
        if (content[j] == '\\' && j + 1 < n) ++j;
        if (content[j] == '\n') ++line;
        ++j;
      }
      i = j < n ? j + 1 : n;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(content[j])) ++j;
      std::string ident = content.substr(i, j - i);
      // Raw string literal: R"delim( ... )delim" (also LR/uR/UR/u8R).
      if (j < n && content[j] == '"' &&
          (ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
           ident == "u8R")) {
        std::size_t open = content.find('(', j);
        if (open == std::string::npos) {
          i = n;
          continue;
        }
        const std::string delim = ")" + content.substr(j + 1, open - j - 1) + "\"";
        std::size_t close = content.find(delim, open + 1);
        for (std::size_t k = j; k < std::min(n, close == std::string::npos
                                                    ? n
                                                    : close + delim.size());
             ++k) {
          if (content[k] == '\n') ++line;
        }
        i = close == std::string::npos ? n : close + delim.size();
        continue;
      }
      scan.tokens.push_back({std::move(ident), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      // pp-number: digits, idents, quotes-as-separators, dots, and +/- when
      // preceded by an exponent char.
      std::size_t j = i + 1;
      while (j < n) {
        const char d = content[j];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (content[j - 1] == 'e' || content[j - 1] == 'E' ||
                    content[j - 1] == 'p' || content[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      scan.tokens.push_back({content.substr(i, j - i), line});
      i = j;
      continue;
    }
    scan.tokens.push_back({std::string(1, c), line});
    ++i;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Findings and the analyzer.

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;  // "D1".."D4"
  std::string message;
};

const char* tag_for_rule(const std::string& rule) {
  if (rule == "D1") return "nondeterminism-ok";
  if (rule == "D2") return "order-insensitive";
  if (rule == "D3") return "float-sort-ok";
  if (rule == "D5") return "unit-ok";
  if (rule == "D6") return "unit-escape";
  return "";  // L1 is unsuppressable
}

bool known_tag(const std::string& tag) {
  return tag == "nondeterminism-ok" || tag == "order-insensitive" ||
         tag == "float-sort-ok" || tag == "unit-ok" || tag == "unit-escape";
}

/// Identifiers whose name announces a physical dimension: declaring one as
/// a bare `double` in a plan directory defeats src/common/units.h.  Exact
/// matches only — `runtime_noise_sigma` is a dimensionless multiplier and
/// must not fire.
bool is_dimension_name(const std::string& s) {
  static const std::set<std::string> kNames = {
      "theta",    "delta",    "delta_min", "eta",       "reference_eta",
      "deadline", "horizon",  "budget",    "completion", "arrival",
      "runtime",  "now",      "makespan",  "latency",    "utility",
      "priority", "demand",   "duration",  "occupation", "start",
      "finish",   "target_completion",     "task_runtime",
      "mean_runtime"};
  return kNames.count(s) > 0;
}

/// The numeric kernels allowed to unwrap units with `.value()` (rule D6)
/// and to hold raw-double locals for the inner loops (rule D5): the solve
/// and packing kernels, where the algebra happens, plus the planner's
/// serialization edge.  Implementation files only — interfaces stay typed.
bool is_unit_kernel(const std::string& path) {
  static const char* kKernels[] = {
      "src/robust/wcde.cc",       "src/robust/wcde_batch.cc",
      "src/robust/rem.cc",        "src/robust/wcde_cache.cc",
      "src/tas/slot_mapping.cc",  "src/tas/onion_peeling.cc",
      "src/core/rush_planner.cc"};
  for (const char* k : kKernels) {
    if (path == k) return true;
  }
  return false;
}

class Analyzer {
 public:
  /// Declaration pass: learns hash-container variables/aliases and
  /// double-typed names (including `using X = double;` aliases) from a file.
  /// Run over every file in the scan set before any check_file call, so a
  /// header's member declarations cover its .cc's loops.
  void collect_decls(const FileScan& scan) {
    const std::vector<Token>& t = scan.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      // Type aliases: `using X = double ;` / `using X = ...unordered_map...;`
      if (t[i].text == "using" && i + 2 < t.size() && t[i + 2].text == "=") {
        const std::string& alias = t[i + 1].text;
        bool aliases_hash = false;
        bool aliases_double = false;
        std::size_t j = i + 3;
        std::size_t rhs_len = 0;
        for (; j < t.size() && t[j].text != ";"; ++j, ++rhs_len) {
          if (is_hash_type(t[j].text)) aliases_hash = true;
          if (t[j].text == "double") aliases_double = true;
        }
        if (aliases_hash) hash_types_.insert(alias);
        if (aliases_double && rhs_len == 1) double_types_.insert(alias);
        continue;
      }
      if (is_hash_type(t[i].text) || hash_types_.count(t[i].text) > 0) {
        record_declared_name(t, i, hash_vars_);
      } else if (is_double_type(t[i].text)) {
        record_declared_name(t, i, double_names_);
      }
    }
  }

  /// Rule pass over one file.  `plan_dir` enables D2/D3/D5/D6; `d1_exempt`
  /// silences D1 (src/common/rng.*, bench/); `kernel_exempt` silences
  /// D5/D6 inside the allowlisted numeric kernels (is_unit_kernel).
  std::vector<Finding> check_file(const FileScan& scan, bool plan_dir,
                                  bool d1_exempt, bool kernel_exempt,
                                  std::vector<Suppression>& suppressions) const {
    std::vector<Finding> findings;
    auto emit = [&](int line, const std::string& rule, std::string message) {
      // A matching, well-formed suppression on the same line or the line
      // directly above absorbs the finding (and is marked used for D4).
      const char* tag = tag_for_rule(rule);
      for (Suppression& s : suppressions) {
        if (!s.malformed && s.tag == tag &&
            (s.line == line || s.line + 1 == line)) {
          s.used = true;
          return;
        }
      }
      findings.push_back({scan.path, line, rule, std::move(message)});
    };

    const std::vector<Token>& t = scan.tokens;
    auto text = [&](std::size_t i) -> const std::string& {
      static const std::string empty;
      return i < t.size() ? t[i].text : empty;
    };

    // ---- D1: nondeterminism sources -------------------------------------
    if (!d1_exempt) {
      for (std::size_t i = 0; i < t.size(); ++i) {
        const std::string& w = t[i].text;
        if (w == "random_device") {
          emit(t[i].line, "D1",
               "std::random_device is a nondeterminism source; seed from "
               "src/common/rng.h instead");
        } else if ((w == "rand" || w == "srand") && text(i + 1) == "(") {
          emit(t[i].line, "D1",
               w + "() is a nondeterminism source; use src/common/rng.h");
        } else if (w == "system_clock" || w == "steady_clock" ||
                   w == "high_resolution_clock") {
          emit(t[i].line, "D1",
               "std::chrono::" + w +
                   " reads wall time; plan code must not (profiling code "
                   "suppresses with a reason)");
        } else if (w == "time" && text(i + 1) == "(" &&
                   (text(i + 2) == "nullptr" || text(i + 2) == "NULL" ||
                    text(i + 2) == "0") &&
                   text(i + 3) == ")") {
          emit(t[i].line, "D1",
               "time(" + text(i + 2) + ") is a nondeterminism source");
        }
      }
    }

    if (plan_dir) {
      // ---- D2: hash-container iteration ---------------------------------
      for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].text == "for" && t[i + 1].text == "(") {
          const std::size_t close = match_paren(t, i + 1);
          if (close == 0) continue;
          // Range-for: a ':' at depth 1 that is not part of '::'.
          std::size_t colon = 0;
          int depth = 0;
          for (std::size_t j = i + 1; j < close; ++j) {
            if (t[j].text == "(") ++depth;
            if (t[j].text == ")") --depth;
            if (depth == 1 && t[j].text == ":" && text(j - 1) != ":" &&
                text(j + 1) != ":") {
              colon = j;
              break;
            }
          }
          if (colon != 0) {
            for (std::size_t j = colon + 1; j < close; ++j) {
              if (hash_vars_.count(t[j].text) > 0) {
                emit(t[i].line, "D2",
                     "range-for over hash container '" + t[j].text +
                         "': iteration order is unspecified; iterate sorted "
                         "keys instead");
                break;
              }
            }
          } else {
            // Classic for: look for `<hashvar> . begin|cbegin (` in the
            // init clause (up to the first ';').
            for (std::size_t j = i + 2; j < close && t[j].text != ";"; ++j) {
              if (hash_vars_.count(t[j].text) > 0 && text(j + 1) == "." &&
                  (text(j + 2) == "begin" || text(j + 2) == "cbegin") &&
                  text(j + 3) == "(") {
                emit(t[i].line, "D2",
                     "iterator loop over hash container '" + t[j].text +
                         "': iteration order is unspecified; iterate sorted "
                         "keys instead");
                break;
              }
            }
          }
        }
        // equal_range walks: the returned bucket range has unspecified
        // internal order even for one key (multimap duplicates).
        if (hash_vars_.count(t[i].text) > 0 && text(i + 1) == "." &&
            text(i + 2) == "equal_range" && text(i + 3) == "(") {
          emit(t[i].line, "D2",
               "equal_range over hash container '" + t[i].text +
                   "': order within the range is unspecified");
        }
      }

      // ---- D3: unstable sort on double keys without a tiebreak ----------
      for (std::size_t i = 0; i + 4 < t.size(); ++i) {
        if (!(t[i].text == "std" && t[i + 1].text == ":" &&
              t[i + 2].text == ":" && t[i + 3].text == "sort" &&
              t[i + 4].text == "(")) {
          continue;
        }
        const std::size_t open = i + 4;
        const std::size_t close = match_paren(t, open);
        if (close == 0) continue;
        // Comparator = third top-level argument, if any.
        std::size_t arg_start = open + 1;
        int commas = 0;
        std::size_t comp_start = 0;
        int depth = 0;
        for (std::size_t j = open; j <= close; ++j) {
          if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{") ++depth;
          if (t[j].text == ")" || t[j].text == "]" || t[j].text == "}") --depth;
          if (depth == 1 && t[j].text == ",") {
            ++commas;
            if (commas == 2) comp_start = j + 1;
          }
        }
        static_cast<void>(arg_start);
        if (comp_start == 0) continue;  // two-arg sort: keys have no payload
        if (comparator_lacks_double_tiebreak(t, comp_start, close)) {
          emit(t[i].line, "D3",
               "std::sort comparator keys on a double with no tiebreak: "
               "tied keys land in unspecified order (std::sort is "
               "unstable); add an id tiebreak or use std::stable_sort");
        }
      }

      // ---- D5: bare double where the name announces a dimension ---------
      if (!kernel_exempt) {
        for (std::size_t i = 0; i + 2 < t.size(); ++i) {
          if (t[i].text != "double") continue;
          const std::string& name = t[i + 1].text;
          const std::string& after = t[i + 2].text;
          if (!is_dimension_name(name)) continue;
          if (after != "," && after != ")" && after != ";" && after != "=" &&
              after != "{") {
            continue;
          }
          emit(t[i + 1].line, "D5",
               "'" + name +
                   "' names a dimensioned quantity but is declared as a "
                   "bare double; use a unit alias from src/common/types.h "
                   "or a checked type from src/common/units.h");
        }

        // ---- D6: .value() unwrapping outside the kernel allowlist -------
        for (std::size_t i = 0; i + 2 < t.size(); ++i) {
          if (t[i].text == "." && t[i + 1].text == "value" &&
              t[i + 2].text == "(") {
            emit(t[i + 1].line, "D6",
                 ".value() unwraps a unit outside the numeric-kernel "
                 "allowlist; keep the arithmetic inside the typed algebra "
                 "or move the escape to a kernel/serialization edge");
          }
        }
      }
    }

    return findings;
  }

 private:
  static bool is_hash_type(const std::string& s) {
    return s == "unordered_map" || s == "unordered_set" ||
           s == "unordered_multimap" || s == "unordered_multiset";
  }
  bool is_double_type(const std::string& s) const {
    return double_types_.count(s) > 0;
  }

  /// After a container/double type name at t[i], finds the declared
  /// identifier (skipping template arguments and `&`/`*`/`const`) and
  /// records it.
  void record_declared_name(const std::vector<Token>& t, std::size_t i,
                            std::set<std::string>& into) {
    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == "<") {
      int depth = 1;
      ++j;
      while (j < t.size() && depth > 0) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">") --depth;
        ++j;
      }
    }
    while (j < t.size() &&
           (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
      ++j;
    }
    if (j < t.size() && is_ident_start(t[j].text[0])) into.insert(t[j].text);
  }

  static std::size_t match_paren(const std::vector<Token>& t,
                                 std::size_t open) {
    int depth = 0;
    for (std::size_t j = open; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")") {
        --depth;
        if (depth == 0) return j;
      }
    }
    return 0;
  }

  /// True when the comparator tokens in (start, end) hold a lambda whose
  /// return expression is a single `<`/`>` comparison whose left terminal is
  /// a known double-typed name, with no `||`/std::tie secondary key.
  bool comparator_lacks_double_tiebreak(const std::vector<Token>& t,
                                        std::size_t start,
                                        std::size_t end) const {
    bool is_lambda = false;
    std::size_t ret = 0;
    for (std::size_t j = start; j < end; ++j) {
      if (t[j].text == "[") is_lambda = true;
      if (is_lambda && t[j].text == "return") {
        ret = j;
        break;
      }
    }
    if (ret == 0) return false;
    std::size_t stop = ret;
    while (stop < end && t[stop].text != ";") ++stop;
    int comparisons = 0;
    std::size_t comparison_at = 0;
    for (std::size_t j = ret + 1; j < stop; ++j) {
      const std::string& w = t[j].text;
      if (w == "|" || w == "&") return false;  // '||' tiebreak (or bit ops)
      if (w == "tie") return false;            // std::tie lexicographic key
      if ((w == "<" || w == ">") && t[j - 1].text != "-" &&
          t[j - 1].text != "<" && t[j - 1].text != ">") {
        ++comparisons;
        comparison_at = j;
      }
    }
    if (comparisons != 1) return false;  // 0 or 2+: assume composite key
    // Left terminal of the comparison: an identifier, or the function name
    // behind a call's closing paren.
    std::size_t k = comparison_at - 1;
    if (t[k].text == ")") {
      int depth = 0;
      while (k > ret) {
        if (t[k].text == ")") ++depth;
        if (t[k].text == "(") {
          --depth;
          if (depth == 0) break;
        }
        --k;
      }
      if (k == ret) return false;
      --k;  // token before the '(' names the callee
    }
    return is_ident_start(t[k].text.empty() ? '\0' : t[k].text[0]) &&
           double_names_.count(t[k].text) > 0;
  }

  std::set<std::string> hash_types_;  // alias names for hash containers
  std::set<std::string> double_types_{"double"};
  std::set<std::string> hash_vars_;
  std::set<std::string> double_names_;
};

// ---------------------------------------------------------------------------
// Scan-set assembly and modes.

bool has_cxx_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_plan_dir(const std::string& path) {
  static const char* kPlanDirs[] = {"src/core/",      "src/tas/",
                                    "src/robust/",    "src/estimator/",
                                    "src/cluster/",   "src/baselines/",
                                    "src/engine/"};
  for (const char* dir : kPlanDirs) {
    if (starts_with(path, dir)) return true;
  }
  return false;
}

bool is_d1_exempt(const std::string& path) {
  // src/daemon is the wall-clock layer by design: it exists to stamp
  // socket events with host time.  Everything below it (engine, planner)
  // stays clock-free — replay determinism depends on it.
  return starts_with(path, "bench/") || starts_with(path, "src/common/rng.") ||
         starts_with(path, "src/daemon/");
}

// ---------------------------------------------------------------------------
// L1: the module layering DAG.  Rank is position from the bottom; an include
// is legal only into the same module or a strictly lower rank.  The table
// mirrors DESIGN.md §5g and the CMake target graph — adding a module means
// adding it here, consciously, at a rank.

int module_rank(const std::string& module) {
  static const std::map<std::string, int> kRank = {
      {"common", 0},
      {"stats", 1},   {"utility", 1},   {"sim", 1},      {"lp", 1},
      {"config", 1},
      {"robust", 2},  {"estimator", 2}, {"tas", 2},
      {"cluster", 3},
      {"metrics", 4}, {"baselines", 4}, {"workload", 4}, {"core", 4},
      {"state", 4},
      {"experiments", 5}, {"engine", 5},
      {"daemon", 6}};
  const auto it = kRank.find(module);
  return it == kRank.end() ? -1 : it->second;
}

/// The `src/<module>/` component of a path, or "" when not under src/.
std::string module_of(const std::string& path) {
  if (!starts_with(path, "src/")) return "";
  const std::size_t slash = path.find('/', 4);
  return slash == std::string::npos ? "" : path.substr(4, slash - 4);
}

/// Layering findings for one file.  `path` is the effective path (a
/// fixture's claimed path in self-test).  src/check is exempt in both
/// directions: the invariant auditor is cyclic with cluster by design.
std::vector<Finding> layering_findings(const FileScan& scan,
                                       const std::string& path) {
  std::vector<Finding> findings;
  const std::string module = module_of(path);
  if (module.empty() || module == "check") return findings;
  const int from = module_rank(module);
  if (from < 0) return findings;  // unranked module: not yet in the DAG
  for (const auto& [line, target] : scan.includes) {
    const std::string included = module_of(target);
    if (included.empty() || included == module || included == "check") continue;
    const int to = module_rank(included);
    if (to < 0 || to < from) continue;
    findings.push_back(
        {path, line, "L1",
         "src/" + module + "/ (rank " + std::to_string(from) +
             ") must not include src/" + included + "/ (rank " +
             std::to_string(to) +
             "): the layering DAG admits only strictly-downward includes"});
  }
  return findings;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Options {
  std::string repo_root;
  std::string baseline;
  std::string self_test_dir;
  bool force_plan_dir = false;
  bool github = false;
  std::vector<std::string> files;
};

int usage() {
  std::cerr << "usage: rushlint --repo-root DIR [--baseline FILE] [--github]\n"
               "       rushlint --self-test FIXTURE_DIR\n"
               "       rushlint [--plan-dir] [--github] FILE...\n";
  return 2;
}

void print_findings(const std::vector<Finding>& findings, bool github = false) {
  for (const Finding& f : findings) {
    if (github) {
      // GitHub Actions workflow-command form: the annotation lands on the
      // PR diff at file:line.  Messages are single-line by construction.
      std::cout << "::error file=" << f.file << ",line=" << f.line
                << "::rushlint " << f.rule << ": " << f.message << "\n";
    } else {
      std::cout << f.file << ":" << f.line << ": rushlint " << f.rule << ": "
                << f.message << "\n";
    }
  }
}

/// D4 findings shared by every mode: malformed/unreasoned directives,
/// unknown tags, and stale (unused) suppressions.
std::vector<Finding> suppression_findings(const FileScan& scan) {
  std::vector<Finding> findings;
  for (const Suppression& s : scan.suppressions) {
    if (s.malformed) {
      findings.push_back({scan.path, s.line, "D4", s.problem});
    } else if (!known_tag(s.tag)) {
      findings.push_back({scan.path, s.line, "D4",
                          "unknown suppression tag '" + s.tag +
                              "' (expected nondeterminism-ok, "
                              "order-insensitive, float-sort-ok, unit-ok "
                              "or unit-escape)"});
    } else if (!s.used) {
      findings.push_back({scan.path, s.line, "D4",
                          "stale suppression '" + s.tag +
                              "': nothing on this line or the next matches "
                              "the rule it silences"});
    }
  }
  return findings;
}

int run_self_test(const std::string& dir) {
  std::vector<fs::path> fixtures;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && has_cxx_extension(entry.path())) {
      fixtures.push_back(entry.path());
    }
  }
  std::sort(fixtures.begin(), fixtures.end());
  if (fixtures.empty()) {
    std::cerr << "rushlint --self-test: no fixtures in " << dir << "\n";
    return 2;
  }
  int failures = 0;
  for (const fs::path& fixture : fixtures) {
    const std::string name = fixture.filename().string();
    // Expectation from the name: dN_pos_*/lN_pos_* fires exactly rule
    // DN/LN once; dN_neg_*/lN_neg_* is silent.
    if (name.size() < 6 || (name[0] != 'd' && name[0] != 'l') ||
        !std::isdigit(static_cast<unsigned char>(name[1])) || name[2] != '_') {
      std::cerr << "rushlint --self-test: fixture '" << name
                << "' must be named dN_pos_*.cc, dN_neg_*.cc, lN_pos_*.cc "
                   "or lN_neg_*.cc\n";
      ++failures;
      continue;
    }
    const std::string rule =
        std::string(1, static_cast<char>(std::toupper(name[0]))) +
        name.substr(1, 1);
    const bool expect_fire = name.substr(3, 3) == "pos";

    // Each fixture is analyzed in isolation with plan-dir rules forced on,
    // so a fixture declares exactly the state it exercises.  Path-scoped
    // rules (L1, the D6 kernel allowlist) see the path the fixture claims
    // via `// rushlint-fixture-path:`, not the fixture directory.
    FileScan scan = lex_file(name, read_file(fixture));
    const std::string effective_path =
        scan.fixture_path.empty() ? scan.path : scan.fixture_path;
    Analyzer analyzer;
    analyzer.collect_decls(scan);
    std::vector<Finding> findings = analyzer.check_file(
        scan, /*plan_dir=*/true, is_d1_exempt(effective_path),
        is_unit_kernel(effective_path), scan.suppressions);
    for (Finding& f : suppression_findings(scan)) findings.push_back(std::move(f));
    for (Finding& f : layering_findings(scan, effective_path)) {
      findings.push_back(std::move(f));
    }

    bool ok;
    if (expect_fire) {
      ok = findings.size() == 1 && findings[0].rule == rule;
    } else {
      ok = findings.empty();
    }
    if (ok) {
      std::cout << "PASS " << name << "\n";
    } else {
      ++failures;
      std::cout << "FAIL " << name << ": expected "
                << (expect_fire ? "exactly one " + rule + " finding"
                                : std::string("silence"))
                << ", got " << findings.size() << " finding(s)\n";
      print_findings(findings);
    }
  }
  if (failures > 0) {
    std::cout << "rushlint self-test: FAILED (" << failures << " fixture(s))\n";
    return 1;
  }
  std::cout << "rushlint self-test: OK (" << fixtures.size() << " fixtures)\n";
  return 0;
}

std::map<std::string, int> read_baseline(const std::string& path) {
  std::map<std::string, int> budget;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    int count = 0;
    if (fields >> tag >> count) budget[tag] = count;
  }
  return budget;
}

int run_scan(const Options& options) {
  // Assemble the scan set.
  std::vector<std::pair<fs::path, std::string>> files;  // (disk path, label)
  if (!options.repo_root.empty()) {
    const fs::path root(options.repo_root);
    for (const char* top : {"src", "tests", "examples"}) {
      const fs::path dir = root / top;
      if (!fs::exists(dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (entry.is_regular_file() && has_cxx_extension(entry.path())) {
          files.emplace_back(entry.path(),
                             fs::relative(entry.path(), root).generic_string());
        }
      }
    }
  }
  for (const std::string& f : options.files) {
    files.emplace_back(fs::path(f), fs::path(f).generic_string());
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  if (files.empty()) return usage();

  std::vector<FileScan> scans;
  scans.reserve(files.size());
  Analyzer analyzer;
  for (const auto& [disk, label] : files) {
    scans.push_back(lex_file(label, read_file(disk)));
    analyzer.collect_decls(scans.back());
  }

  std::vector<Finding> findings;
  std::map<std::string, int> used_suppressions;
  for (FileScan& scan : scans) {
    const bool plan_dir = options.force_plan_dir || is_plan_dir(scan.path);
    std::vector<Finding> file_findings =
        analyzer.check_file(scan, plan_dir, is_d1_exempt(scan.path),
                            is_unit_kernel(scan.path), scan.suppressions);
    for (Finding& f : file_findings) findings.push_back(std::move(f));
    for (Finding& f : suppression_findings(scan)) findings.push_back(std::move(f));
    for (Finding& f : layering_findings(scan, scan.path)) {
      findings.push_back(std::move(f));
    }
    for (const Suppression& s : scan.suppressions) {
      if (s.used) ++used_suppressions[s.tag];
    }
  }

  print_findings(findings, options.github);
  std::map<std::string, int> per_rule;
  for (const Finding& f : findings) ++per_rule[f.rule];
  if (options.github) {
    for (const auto& [rule, count] : per_rule) {
      std::cout << "::notice::rushlint " << rule << ": " << count
                << " finding(s)\n";
    }
  }

  bool budget_failed = false;
  if (!options.baseline.empty()) {
    // D4 ratchet: the suppression budget can only shrink.  More used
    // suppressions than the baseline fails; fewer prints a reminder to
    // tighten the checked-in numbers.
    const std::map<std::string, int> budget = read_baseline(options.baseline);
    for (const auto& [tag, used] : used_suppressions) {
      const auto it = budget.find(tag);
      const int allowed = it == budget.end() ? 0 : it->second;
      if (used > allowed) {
        std::cout << "rushlint D4: " << used << " '" << tag
                  << "' suppressions in use, but the baseline allows only "
                  << allowed << " (" << options.baseline
                  << ") — fix the code instead of suppressing\n";
        budget_failed = true;
        ++per_rule["D4"];
      }
    }
    for (const auto& [tag, allowed] : budget) {
      const auto it = used_suppressions.find(tag);
      const int used = it == used_suppressions.end() ? 0 : it->second;
      if (used < allowed) {
        std::cerr << "rushlint: note: only " << used << " '" << tag
                  << "' suppressions remain (baseline " << allowed
                  << ") — ratchet " << options.baseline << " down\n";
      }
    }
  }

  if (!findings.empty() || budget_failed) {
    std::cout << "rushlint: FAILED (";
    bool first = true;
    for (const auto& [rule, count] : per_rule) {
      if (!first) std::cout << ", ";
      std::cout << rule << ": " << count;
      first = false;
    }
    std::cout << ")\n";
    return 1;
  }
  std::cout << "rushlint: OK (" << files.size() << " files";
  if (!used_suppressions.empty()) {
    std::cout << ",";
    for (const auto& [tag, used] : used_suppressions) {
      std::cout << " " << used << " " << tag;
    }
    std::cout << " suppression(s)";
  }
  std::cout << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--repo-root" && a + 1 < argc) {
      options.repo_root = argv[++a];
    } else if (arg == "--baseline" && a + 1 < argc) {
      options.baseline = argv[++a];
    } else if (arg == "--self-test" && a + 1 < argc) {
      options.self_test_dir = argv[++a];
    } else if (arg == "--plan-dir") {
      options.force_plan_dir = true;
    } else if (arg == "--github") {
      options.github = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      options.files.push_back(arg);
    }
  }
  if (!options.self_test_dir.empty()) return run_self_test(options.self_test_dir);
  if (options.repo_root.empty() && options.files.empty()) return usage();
  return run_scan(options);
}
