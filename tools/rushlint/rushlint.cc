// rushlint — the repo-specific determinism analyzer (README "Static safety",
// DESIGN.md §5f).
//
// The plan pipeline promises bit-identical output across thread counts,
// warm/cold peeling and dispatch seams.  scripts/lint.sh's grep rules cannot
// see through comments, strings or types, so the checks that need token
// context live here:
//
//   D1  no nondeterminism sources — std::rand/srand, std::random_device,
//       time(nullptr/NULL/0), system_clock/steady_clock/
//       high_resolution_clock — anywhere outside src/common/rng.* and
//       bench/.  Profiling code suppresses per-line with a reason.
//   D2  no iteration over std::unordered_map/unordered_set (range-for,
//       iterator for-loops, equal_range walks) in the plan-affecting
//       directories (src/core, src/tas, src/robust, src/estimator,
//       src/cluster, src/baselines): hash iteration order is unspecified
//       and leaks into anything the loop body touches in order.
//   D3  no std::sort in those directories whose comparator is a single
//       comparison on a double-typed key (Seconds, Utility, ...): doubles
//       tie, std::sort is unstable, so tied elements land in unspecified
//       order — add an id tiebreak or use std::stable_sort.
//   D4  suppressions must parse, carry a non-empty reason, actually
//       suppress something, and stay within the checked-in per-tag budget
//       (tools/rushlint/suppressions.baseline) — the budget can only
//       shrink.
//
// v2 adds the dimensional-safety rules (DESIGN.md §5g):
//
//   D5  no bare `double` declaration of a dimension-bearing name (theta,
//       delta, eta, deadline, ...) in the plan-affecting directories: the
//       name announces a unit, so the declaration must use a unit alias
//       from src/common/types.h or a checked type from src/common/units.h.
//   D6  no `.value()` unwrapping in the plan-affecting directories outside
//       the allowlisted numeric kernels (solve loops in wcde/rem/
//       wcde_cache/slot_mapping/onion_peeling/rush_planner .cc files):
//       arithmetic should stay inside the typed algebra; kernels and
//       serialization edges are where the raw representation escapes.
//   L1  module layering: every `#include "src/<m>/..."` from src/<m'>/
//       must point at a strictly lower-ranked module (or stay inside the
//       module).  The enforced DAG, bottom-up:
//         0 common | 1 stats utility sim lp config | 2 robust estimator
//         tas | 3 cluster | 4 metrics baselines workload core state |
//         5 experiments engine | 6 daemon (src/check is exempt: the
//         invariant auditor is cyclic with cluster by design).  L1 has no
//       suppression tag — a layering violation is always fixed, never
//       waived.
//
// v3 adds the persistence/protocol schema rules (DESIGN.md §5k).  The WAL,
// the snapshot container and the rushd wire protocol are hand-serialized
// byte layouts whose crash-restore-replay guarantee is only as strong as
// serializer/deserializer symmetry staying intact as fields are added:
//
//   D7  read/write symmetry: serializer/deserializer pairs (paired by
//       naming convention — serialize_X/deserialize_X, save_state/
//       restore_state, save_warm_state/restore_warm_state, serialize/parse,
//       put_X/get_X, encode_X/decode_X — or by an explicit in-body
//       `// rushlint-pair-reader: <reader>` directive) must perform the
//       same wire operations in the same linear order.  A field written
//       but never read (or vice versa), or read in a different order, is
//       an error.  A deliberately non-linear read (e.g. a trailing
//       checksum consumed first) drops that op from both sides with
//       `// rushlint: wire-asym(<reason>)`.
//   D8  enum-sync: enums marked `// rushlint-serialized-enum` (on or above
//       the enum declaration) must stay in sync across every site that
//       dispatches on them: any switch whose case labels resolve to the
//       enum must mention every enumerator (a `default:` does not count),
//       and `// rushlint-enum-site: <Enum> <label>` marks a non-switch
//       block (e.g. a name table) that must mention every enumerator.
//   D9  version ratchet: each serializer pair owns a version constant (the
//       first `k*Version*` identifier referenced in the writer body, or an
//       explicit `// rushlint-schema-owner: kName` directive) and has a
//       canonical fingerprint — its writer op sequence — recorded in the
//       committed schema baseline.  A layout change without bumping the
//       owning constant, or any divergence from the baseline, fails;
//       `--update-schema-baseline` regenerates the file (and
//       scripts/schema_guard.sh stops a PR from regenerating it without a
//       version bump).
//   D10 raw-memory ban: no reinterpret_cast/memcpy/memmove/bit_cast or
//       host-endian conversions (htons/htonl/ntohs/ntohl) in the
//       serialization scope (src/engine/, src/state/, src/daemon/,
//       src/common/wire.h) — bytes go through the checked little-endian
//       WireWriter/WireReader helpers.  src/common/wire.cc is the one
//       exempt kernel (it implements those helpers); OS socket-API sites
//       suppress per-line with `// rushlint: raw-memory-ok(<reason>)`.
//
// Suppression syntax, on the flagged line or the line directly above:
//   // rushlint: nondeterminism-ok(<reason>)   — D1
//   // rushlint: order-insensitive(<reason>)   — D2
//   // rushlint: float-sort-ok(<reason>)       — D3
//   // rushlint: unit-ok(<reason>)             — D5
//   // rushlint: unit-escape(<reason>)         — D6
//   // rushlint: wire-asym(<reason>)           — D7 (drops one op)
//   // rushlint: enum-sync-ok(<reason>)        — D8
//   // rushlint: raw-memory-ok(<reason>)       — D10
//
// Modes:
//   rushlint --repo-root DIR [--baseline FILE]
//            [--schema-baseline FILE | --update-schema-baseline]
//       scan src/, tests/, examples/ and bench/ under DIR
//   rushlint --self-test DIR                      run the fixture corpus:
//       every file named dN_pos_*/lN_pos_* must fire exactly rule DN/LN
//       and nothing else; every dN_neg_*/lN_neg_* must be silent.  A
//       fixture opts into path-scoped rules (L1, the D6 allowlist, the
//       D10 scope) with a `// rushlint-fixture-path: src/...` line, and
//       into D9 with `// rushlint-schema-expect: <pair> <owner>=<v> <ops>`
//       lines that act as its schema baseline.
//   rushlint [--plan-dir] FILE...                 scan explicit files
//   rushlint --list-rules                         one-line rule summaries
//
// Output: `file:line: rushlint RULE: message` per finding, or with
// --github the GitHub Actions annotation form
// `::error file=F,line=L::rushlint RULE: message` plus a per-rule
// `::notice` summary, so findings surface inline on the PR diff.
//
// Exit status: 0 clean, 1 findings or budget violations, 2 usage error.

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Lexer: tokens + rushlint suppression directives, with comments, string
// literals, char literals and raw strings stripped so rule patterns can
// never match inside them.

struct Token {
  std::string text;
  int line = 0;
};

struct Suppression {
  std::string tag;
  std::string reason;
  int line = 0;        // line the directive comment sits on
  bool malformed = false;
  std::string problem; // set when malformed
  bool used = false;
};

struct FileScan {
  std::string path;  // repo-relative, '/' separators
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  /// Quoted include targets, collected by a raw per-line pass (the lexer
  /// strips string literals, so the token stream cannot carry them).
  std::vector<std::pair<int, std::string>> includes;  // (line, target)
  /// Path a self-test fixture claims to live at (`// rushlint-fixture-path:`)
  /// so path-scoped rules (L1, the D6 kernel allowlist) can be exercised
  /// from the flat fixture directory.  Empty outside self-test fixtures.
  std::string fixture_path;
  /// Schema directives, collected by the raw per-line pass (they live in
  /// comments, which the lexer strips).  All are (line, payload) pairs.
  std::vector<std::pair<int, std::string>> pair_directives;      // rushlint-pair-reader:
  std::vector<std::pair<int, std::string>> owner_directives;     // rushlint-schema-owner:
  std::vector<std::pair<int, std::string>> enum_site_directives; // rushlint-enum-site:
  std::vector<std::pair<int, std::string>> schema_expects;       // rushlint-schema-expect:
  /// Lines carrying a `rushlint-serialized-enum` mark (on or directly above
  /// the enum declaration it applies to).
  std::vector<int> serialized_enum_marks;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses `rushlint: tag(reason)` directives out of one line-comment body.
void parse_directives(const std::string& comment, int line,
                      std::vector<Suppression>& out) {
  const std::string marker = "rushlint:";
  std::size_t at = comment.find(marker);
  if (at == std::string::npos) return;
  std::size_t i = at + marker.size();
  while (i < comment.size() && comment[i] == ' ') ++i;
  Suppression s;
  s.line = line;
  while (i < comment.size() &&
         (std::islower(static_cast<unsigned char>(comment[i])) ||
          comment[i] == '-')) {
    s.tag.push_back(comment[i++]);
  }
  if (s.tag.empty() || i >= comment.size() || comment[i] != '(') {
    s.malformed = true;
    s.problem = "directive must read 'rushlint: <tag>(<reason>)'";
    out.push_back(std::move(s));
    return;
  }
  const std::size_t close = comment.rfind(')');
  if (close == std::string::npos || close <= i) {
    s.malformed = true;
    s.problem = "directive is missing its closing ')'";
    out.push_back(std::move(s));
    return;
  }
  s.reason = comment.substr(i + 1, close - i - 1);
  // Trim the reason; an all-whitespace reason is no reason.
  while (!s.reason.empty() && std::isspace(static_cast<unsigned char>(s.reason.front()))) {
    s.reason.erase(s.reason.begin());
  }
  while (!s.reason.empty() && std::isspace(static_cast<unsigned char>(s.reason.back()))) {
    s.reason.pop_back();
  }
  if (s.reason.empty()) {
    s.malformed = true;
    s.problem = "suppression carries no reason";
  }
  out.push_back(std::move(s));
}

FileScan lex_file(const std::string& path, const std::string& content) {
  FileScan scan;
  scan.path = path;
  // Raw per-line pass: include targets for L1 and the fixture-path
  // directive.  Deliberately line-oriented — a commented-out include whose
  // line starts with `//` is skipped, which is the right call for a
  // layering rule (the dependency is gone).
  {
    std::istringstream lines(content);
    std::string raw;
    int ln = 0;
    while (std::getline(lines, raw)) {
      ++ln;
      const std::size_t first = raw.find_first_not_of(" \t");
      if (first != std::string::npos && raw[first] == '#' &&
          raw.find("include", first) != std::string::npos) {
        const std::size_t q1 = raw.find('"', first);
        const std::size_t q2 =
            q1 == std::string::npos ? std::string::npos : raw.find('"', q1 + 1);
        if (q2 != std::string::npos) {
          scan.includes.emplace_back(ln, raw.substr(q1 + 1, q2 - q1 - 1));
        }
      }
      auto payload_after = [&](const char* marker) -> std::string {
        const std::size_t at = raw.find(marker);
        if (at == std::string::npos) return std::string();
        std::string rest = raw.substr(at + std::string(marker).size());
        while (!rest.empty() && std::isspace(static_cast<unsigned char>(rest.front()))) {
          rest.erase(rest.begin());
        }
        while (!rest.empty() && std::isspace(static_cast<unsigned char>(rest.back()))) {
          rest.pop_back();
        }
        return rest.empty() ? std::string("\x01") : rest;  // \x01 = marker hit, empty payload
      };
      auto collect = [&](const char* marker,
                         std::vector<std::pair<int, std::string>>& out) {
        std::string payload = payload_after(marker);
        if (payload.empty()) return;
        if (payload == "\x01") payload.clear();
        out.emplace_back(ln, payload);
      };
      {
        const std::string payload = payload_after("rushlint-fixture-path:");
        if (!payload.empty() && payload != "\x01") scan.fixture_path = payload;
      }
      collect("rushlint-pair-reader:", scan.pair_directives);
      collect("rushlint-schema-owner:", scan.owner_directives);
      collect("rushlint-enum-site:", scan.enum_site_directives);
      collect("rushlint-schema-expect:", scan.schema_expects);
      if (raw.find("rushlint-serialized-enum") != std::string::npos) {
        scan.serialized_enum_marks.push_back(ln);
      }
    }
  }
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = content.size();
  auto peek = [&](std::size_t off) -> char {
    return i + off < n ? content[i + off] : '\0';
  };
  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      std::size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      parse_directives(content.substr(i + 2, end - i - 2), line,
                       scan.suppressions);
      i = end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      std::size_t j = i + 2;
      while (j + 1 < n && !(content[j] == '*' && content[j + 1] == '/')) {
        if (content[j] == '\n') ++line;
        ++j;
      }
      i = j + 2 <= n ? j + 2 : n;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && content[j] != quote) {
        if (content[j] == '\\' && j + 1 < n) ++j;
        if (content[j] == '\n') ++line;
        ++j;
      }
      i = j < n ? j + 1 : n;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(content[j])) ++j;
      std::string ident = content.substr(i, j - i);
      // Raw string literal: R"delim( ... )delim" (also LR/uR/UR/u8R).
      if (j < n && content[j] == '"' &&
          (ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
           ident == "u8R")) {
        std::size_t open = content.find('(', j);
        if (open == std::string::npos) {
          i = n;
          continue;
        }
        const std::string delim = ")" + content.substr(j + 1, open - j - 1) + "\"";
        std::size_t close = content.find(delim, open + 1);
        for (std::size_t k = j; k < std::min(n, close == std::string::npos
                                                    ? n
                                                    : close + delim.size());
             ++k) {
          if (content[k] == '\n') ++line;
        }
        i = close == std::string::npos ? n : close + delim.size();
        continue;
      }
      scan.tokens.push_back({std::move(ident), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      // pp-number: digits, idents, quotes-as-separators, dots, and +/- when
      // preceded by an exponent char.
      std::size_t j = i + 1;
      while (j < n) {
        const char d = content[j];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (content[j - 1] == 'e' || content[j - 1] == 'E' ||
                    content[j - 1] == 'p' || content[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      scan.tokens.push_back({content.substr(i, j - i), line});
      i = j;
      continue;
    }
    scan.tokens.push_back({std::string(1, c), line});
    ++i;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Findings and the analyzer.

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;  // "D1".."D4"
  std::string message;
};

const char* tag_for_rule(const std::string& rule) {
  if (rule == "D1") return "nondeterminism-ok";
  if (rule == "D2") return "order-insensitive";
  if (rule == "D3") return "float-sort-ok";
  if (rule == "D5") return "unit-ok";
  if (rule == "D6") return "unit-escape";
  if (rule == "D8") return "enum-sync-ok";
  if (rule == "D10") return "raw-memory-ok";
  // L1, D7 structure and D9 are unsuppressable; D7 uses wire-asym at the
  // op level (it removes an op from the comparison, not a finding).
  return "";
}

bool known_tag(const std::string& tag) {
  return tag == "nondeterminism-ok" || tag == "order-insensitive" ||
         tag == "float-sort-ok" || tag == "unit-ok" || tag == "unit-escape" ||
         tag == "wire-asym" || tag == "enum-sync-ok" || tag == "raw-memory-ok";
}

/// Identifiers whose name announces a physical dimension: declaring one as
/// a bare `double` in a plan directory defeats src/common/units.h.  Exact
/// matches only — `runtime_noise_sigma` is a dimensionless multiplier and
/// must not fire.
bool is_dimension_name(const std::string& s) {
  static const std::set<std::string> kNames = {
      "theta",    "delta",    "delta_min", "eta",       "reference_eta",
      "deadline", "horizon",  "budget",    "completion", "arrival",
      "runtime",  "now",      "makespan",  "latency",    "utility",
      "priority", "demand",   "duration",  "occupation", "start",
      "finish",   "target_completion",     "task_runtime",
      "mean_runtime"};
  return kNames.count(s) > 0;
}

/// The numeric kernels allowed to unwrap units with `.value()` (rule D6)
/// and to hold raw-double locals for the inner loops (rule D5): the solve
/// and packing kernels, where the algebra happens, plus the planner's
/// serialization edge.  Implementation files only — interfaces stay typed.
bool is_unit_kernel(const std::string& path) {
  static const char* kKernels[] = {
      "src/robust/wcde.cc",       "src/robust/wcde_batch.cc",
      "src/robust/rem.cc",        "src/robust/wcde_cache.cc",
      "src/tas/slot_mapping.cc",  "src/tas/onion_peeling.cc",
      "src/core/rush_planner.cc"};
  for (const char* k : kKernels) {
    if (path == k) return true;
  }
  return false;
}

class Analyzer {
 public:
  /// Declaration pass: learns hash-container variables/aliases and
  /// double-typed names (including `using X = double;` aliases) from a file.
  /// Run over every file in the scan set before any check_file call, so a
  /// header's member declarations cover its .cc's loops.
  void collect_decls(const FileScan& scan) {
    const std::vector<Token>& t = scan.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      // Type aliases: `using X = double ;` / `using X = ...unordered_map...;`
      if (t[i].text == "using" && i + 2 < t.size() && t[i + 2].text == "=") {
        const std::string& alias = t[i + 1].text;
        bool aliases_hash = false;
        bool aliases_double = false;
        std::size_t j = i + 3;
        std::size_t rhs_len = 0;
        for (; j < t.size() && t[j].text != ";"; ++j, ++rhs_len) {
          if (is_hash_type(t[j].text)) aliases_hash = true;
          if (t[j].text == "double") aliases_double = true;
        }
        if (aliases_hash) hash_types_.insert(alias);
        if (aliases_double && rhs_len == 1) double_types_.insert(alias);
        continue;
      }
      if (is_hash_type(t[i].text) || hash_types_.count(t[i].text) > 0) {
        record_declared_name(t, i, hash_vars_);
      } else if (is_double_type(t[i].text)) {
        record_declared_name(t, i, double_names_);
      }
    }
  }

  /// Rule pass over one file.  `plan_dir` enables D2/D3/D5/D6; `d1_exempt`
  /// silences D1 (src/common/rng.*, bench/); `kernel_exempt` silences
  /// D5/D6 inside the allowlisted numeric kernels (is_unit_kernel).
  std::vector<Finding> check_file(const FileScan& scan, bool plan_dir,
                                  bool d1_exempt, bool kernel_exempt,
                                  std::vector<Suppression>& suppressions) const {
    std::vector<Finding> findings;
    auto emit = [&](int line, const std::string& rule, std::string message) {
      // A matching, well-formed suppression on the same line or the line
      // directly above absorbs the finding (and is marked used for D4).
      const char* tag = tag_for_rule(rule);
      for (Suppression& s : suppressions) {
        if (!s.malformed && s.tag == tag &&
            (s.line == line || s.line + 1 == line)) {
          s.used = true;
          return;
        }
      }
      findings.push_back({scan.path, line, rule, std::move(message)});
    };

    const std::vector<Token>& t = scan.tokens;
    auto text = [&](std::size_t i) -> const std::string& {
      static const std::string empty;
      return i < t.size() ? t[i].text : empty;
    };

    // ---- D1: nondeterminism sources -------------------------------------
    if (!d1_exempt) {
      for (std::size_t i = 0; i < t.size(); ++i) {
        const std::string& w = t[i].text;
        if (w == "random_device") {
          emit(t[i].line, "D1",
               "std::random_device is a nondeterminism source; seed from "
               "src/common/rng.h instead");
        } else if ((w == "rand" || w == "srand") && text(i + 1) == "(") {
          emit(t[i].line, "D1",
               w + "() is a nondeterminism source; use src/common/rng.h");
        } else if (w == "system_clock" || w == "steady_clock" ||
                   w == "high_resolution_clock") {
          emit(t[i].line, "D1",
               "std::chrono::" + w +
                   " reads wall time; plan code must not (profiling code "
                   "suppresses with a reason)");
        } else if (w == "time" && text(i + 1) == "(" &&
                   (text(i + 2) == "nullptr" || text(i + 2) == "NULL" ||
                    text(i + 2) == "0") &&
                   text(i + 3) == ")") {
          emit(t[i].line, "D1",
               "time(" + text(i + 2) + ") is a nondeterminism source");
        }
      }
    }

    if (plan_dir) {
      // ---- D2: hash-container iteration ---------------------------------
      for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].text == "for" && t[i + 1].text == "(") {
          const std::size_t close = match_paren(t, i + 1);
          if (close == 0) continue;
          // Range-for: a ':' at depth 1 that is not part of '::'.
          std::size_t colon = 0;
          int depth = 0;
          for (std::size_t j = i + 1; j < close; ++j) {
            if (t[j].text == "(") ++depth;
            if (t[j].text == ")") --depth;
            if (depth == 1 && t[j].text == ":" && text(j - 1) != ":" &&
                text(j + 1) != ":") {
              colon = j;
              break;
            }
          }
          if (colon != 0) {
            for (std::size_t j = colon + 1; j < close; ++j) {
              if (hash_vars_.count(t[j].text) > 0) {
                emit(t[i].line, "D2",
                     "range-for over hash container '" + t[j].text +
                         "': iteration order is unspecified; iterate sorted "
                         "keys instead");
                break;
              }
            }
          } else {
            // Classic for: look for `<hashvar> . begin|cbegin (` in the
            // init clause (up to the first ';').
            for (std::size_t j = i + 2; j < close && t[j].text != ";"; ++j) {
              if (hash_vars_.count(t[j].text) > 0 && text(j + 1) == "." &&
                  (text(j + 2) == "begin" || text(j + 2) == "cbegin") &&
                  text(j + 3) == "(") {
                emit(t[i].line, "D2",
                     "iterator loop over hash container '" + t[j].text +
                         "': iteration order is unspecified; iterate sorted "
                         "keys instead");
                break;
              }
            }
          }
        }
        // equal_range walks: the returned bucket range has unspecified
        // internal order even for one key (multimap duplicates).
        if (hash_vars_.count(t[i].text) > 0 && text(i + 1) == "." &&
            text(i + 2) == "equal_range" && text(i + 3) == "(") {
          emit(t[i].line, "D2",
               "equal_range over hash container '" + t[i].text +
                   "': order within the range is unspecified");
        }
      }

      // ---- D3: unstable sort on double keys without a tiebreak ----------
      for (std::size_t i = 0; i + 4 < t.size(); ++i) {
        if (!(t[i].text == "std" && t[i + 1].text == ":" &&
              t[i + 2].text == ":" && t[i + 3].text == "sort" &&
              t[i + 4].text == "(")) {
          continue;
        }
        const std::size_t open = i + 4;
        const std::size_t close = match_paren(t, open);
        if (close == 0) continue;
        // Comparator = third top-level argument, if any.
        std::size_t arg_start = open + 1;
        int commas = 0;
        std::size_t comp_start = 0;
        int depth = 0;
        for (std::size_t j = open; j <= close; ++j) {
          if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{") ++depth;
          if (t[j].text == ")" || t[j].text == "]" || t[j].text == "}") --depth;
          if (depth == 1 && t[j].text == ",") {
            ++commas;
            if (commas == 2) comp_start = j + 1;
          }
        }
        static_cast<void>(arg_start);
        if (comp_start == 0) continue;  // two-arg sort: keys have no payload
        if (comparator_lacks_double_tiebreak(t, comp_start, close)) {
          emit(t[i].line, "D3",
               "std::sort comparator keys on a double with no tiebreak: "
               "tied keys land in unspecified order (std::sort is "
               "unstable); add an id tiebreak or use std::stable_sort");
        }
      }

      // ---- D5: bare double where the name announces a dimension ---------
      if (!kernel_exempt) {
        for (std::size_t i = 0; i + 2 < t.size(); ++i) {
          if (t[i].text != "double") continue;
          const std::string& name = t[i + 1].text;
          const std::string& after = t[i + 2].text;
          if (!is_dimension_name(name)) continue;
          if (after != "," && after != ")" && after != ";" && after != "=" &&
              after != "{") {
            continue;
          }
          emit(t[i + 1].line, "D5",
               "'" + name +
                   "' names a dimensioned quantity but is declared as a "
                   "bare double; use a unit alias from src/common/types.h "
                   "or a checked type from src/common/units.h");
        }

        // ---- D6: .value() unwrapping outside the kernel allowlist -------
        for (std::size_t i = 0; i + 2 < t.size(); ++i) {
          if (t[i].text == "." && t[i + 1].text == "value" &&
              t[i + 2].text == "(") {
            emit(t[i + 1].line, "D6",
                 ".value() unwraps a unit outside the numeric-kernel "
                 "allowlist; keep the arithmetic inside the typed algebra "
                 "or move the escape to a kernel/serialization edge");
          }
        }
      }
    }

    return findings;
  }

 private:
  static bool is_hash_type(const std::string& s) {
    return s == "unordered_map" || s == "unordered_set" ||
           s == "unordered_multimap" || s == "unordered_multiset";
  }
  bool is_double_type(const std::string& s) const {
    return double_types_.count(s) > 0;
  }

  /// After a container/double type name at t[i], finds the declared
  /// identifier (skipping template arguments and `&`/`*`/`const`) and
  /// records it.
  void record_declared_name(const std::vector<Token>& t, std::size_t i,
                            std::set<std::string>& into) {
    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == "<") {
      int depth = 1;
      ++j;
      while (j < t.size() && depth > 0) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">") --depth;
        ++j;
      }
    }
    while (j < t.size() &&
           (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
      ++j;
    }
    if (j < t.size() && is_ident_start(t[j].text[0])) into.insert(t[j].text);
  }

  static std::size_t match_paren(const std::vector<Token>& t,
                                 std::size_t open) {
    int depth = 0;
    for (std::size_t j = open; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")") {
        --depth;
        if (depth == 0) return j;
      }
    }
    return 0;
  }

  /// True when the comparator tokens in (start, end) hold a lambda whose
  /// return expression is a single `<`/`>` comparison whose left terminal is
  /// a known double-typed name, with no `||`/std::tie secondary key.
  bool comparator_lacks_double_tiebreak(const std::vector<Token>& t,
                                        std::size_t start,
                                        std::size_t end) const {
    bool is_lambda = false;
    std::size_t ret = 0;
    for (std::size_t j = start; j < end; ++j) {
      if (t[j].text == "[") is_lambda = true;
      if (is_lambda && t[j].text == "return") {
        ret = j;
        break;
      }
    }
    if (ret == 0) return false;
    std::size_t stop = ret;
    while (stop < end && t[stop].text != ";") ++stop;
    int comparisons = 0;
    std::size_t comparison_at = 0;
    for (std::size_t j = ret + 1; j < stop; ++j) {
      const std::string& w = t[j].text;
      if (w == "|" || w == "&") return false;  // '||' tiebreak (or bit ops)
      if (w == "tie") return false;            // std::tie lexicographic key
      if ((w == "<" || w == ">") && t[j - 1].text != "-" &&
          t[j - 1].text != "<" && t[j - 1].text != ">") {
        ++comparisons;
        comparison_at = j;
      }
    }
    if (comparisons != 1) return false;  // 0 or 2+: assume composite key
    // Left terminal of the comparison: an identifier, or the function name
    // behind a call's closing paren.
    std::size_t k = comparison_at - 1;
    if (t[k].text == ")") {
      int depth = 0;
      while (k > ret) {
        if (t[k].text == ")") ++depth;
        if (t[k].text == "(") {
          --depth;
          if (depth == 0) break;
        }
        --k;
      }
      if (k == ret) return false;
      --k;  // token before the '(' names the callee
    }
    return is_ident_start(t[k].text.empty() ? '\0' : t[k].text[0]) &&
           double_names_.count(t[k].text) > 0;
  }

  std::set<std::string> hash_types_;  // alias names for hash containers
  std::set<std::string> double_types_{"double"};
  std::set<std::string> hash_vars_;
  std::set<std::string> double_names_;
};

// ---------------------------------------------------------------------------
// Scan-set assembly and modes.

bool has_cxx_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_plan_dir(const std::string& path) {
  static const char* kPlanDirs[] = {"src/core/",      "src/tas/",
                                    "src/robust/",    "src/estimator/",
                                    "src/cluster/",   "src/baselines/",
                                    "src/engine/"};
  for (const char* dir : kPlanDirs) {
    if (starts_with(path, dir)) return true;
  }
  return false;
}

bool is_d1_exempt(const std::string& path) {
  // src/daemon is the wall-clock layer by design: it exists to stamp
  // socket events with host time.  Everything below it (engine, planner)
  // stays clock-free — replay determinism depends on it.
  return starts_with(path, "bench/") || starts_with(path, "src/common/rng.") ||
         starts_with(path, "src/daemon/");
}

// ---------------------------------------------------------------------------
// v3: the persistence/protocol schema passes (D7-D10).  DESIGN.md §5k.

/// A well-formed suppression with `tag` on `line` or the line directly
/// above absorbs a finding and is marked used (for the D4 stale check).
bool absorb_suppression(FileScan& scan, int line, const char* tag) {
  for (Suppression& s : scan.suppressions) {
    if (!s.malformed && s.tag == tag && (s.line == line || s.line + 1 == line)) {
      s.used = true;
      return true;
    }
  }
  return false;
}

/// D10 scope: the layers that serialize bytes.  src/common/wire.cc is the
/// one exempt kernel — it *implements* the checked little-endian helpers
/// and legitimately touches raw memory to do so.
bool is_raw_memory_scope(const std::string& path) {
  if (path == "src/common/wire.cc") return false;
  return path == "src/common/wire.h" || starts_with(path, "src/engine/") ||
         starts_with(path, "src/state/") || starts_with(path, "src/daemon/");
}

/// D10: raw-memory and host-endian constructs are banned in serialization
/// scope; every byte goes through WireWriter/WireReader.  OS socket-API
/// call sites suppress per-line with `rushlint: raw-memory-ok(reason)`.
std::vector<Finding> raw_memory_findings(FileScan& scan,
                                         const std::string& path) {
  std::vector<Finding> findings;
  if (!is_raw_memory_scope(path)) return findings;
  static const std::map<std::string, const char*> kBanned = {
      {"reinterpret_cast", "type-punning bypasses the checked wire helpers"},
      {"memcpy", "a struct memcpy serializes host memory layout"},
      {"memmove", "a struct memmove serializes host memory layout"},
      {"bit_cast", "bit_cast round-trips the host representation"},
      {"htons", "host-endian conversion bakes byte order into the stream"},
      {"htonl", "host-endian conversion bakes byte order into the stream"},
      {"ntohs", "host-endian conversion bakes byte order into the stream"},
      {"ntohl", "host-endian conversion bakes byte order into the stream"}};
  for (const Token& tok : scan.tokens) {
    const auto it = kBanned.find(tok.text);
    if (it == kBanned.end()) continue;
    if (absorb_suppression(scan, tok.line, "raw-memory-ok")) continue;
    findings.push_back(
        {scan.path, tok.line, "D10",
         tok.text + " in serialization scope: " + std::string(it->second) +
             "; use WireWriter/WireReader (src/common/wire.h) instead"});
  }
  return findings;
}

/// One D9 baseline entry: the canonical fingerprint of a serializer pair.
struct SchemaEntry {
  std::string id;     // "<writer>-><reader>", qualified names
  std::string owner;  // owning version constant (k*Version*)
  long long value = 0;
  std::string ops;    // comma-joined writer op sequence; "-" when empty
  std::string file;   // writer location, for findings (not serialized)
  int line = 0;
};

/// Parses one `<id> <owner>=<value> <ops>` baseline line.
bool parse_schema_entry(const std::string& line, SchemaEntry& e) {
  std::istringstream fields(line);
  std::string owner_eq;
  if (!(fields >> e.id >> owner_eq >> e.ops)) return false;
  const std::size_t eq = owner_eq.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= owner_eq.size()) {
    return false;
  }
  for (std::size_t i = eq + 1; i < owner_eq.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(owner_eq[i])) &&
        !(i == eq + 1 && owner_eq[i] == '-')) {
      return false;
    }
  }
  e.owner = owner_eq.substr(0, eq);
  e.value = std::strtoll(owner_eq.c_str() + eq + 1, nullptr, 10);
  return e.id.find("->") != std::string::npos;
}

std::map<std::string, SchemaEntry> read_schema_baseline(
    const std::string& path, std::vector<Finding>& errors) {
  std::map<std::string, SchemaEntry> entries;
  std::ifstream in(path);
  if (!in) {
    errors.push_back({path, 0, "D9",
                      "cannot read the schema baseline — create it with "
                      "rushlint --update-schema-baseline and commit it"});
    return entries;
  }
  std::string line;
  int ln = 0;
  while (std::getline(in, line)) {
    ++ln;
    if (line.empty() || line[0] == '#') continue;
    SchemaEntry e;
    if (!parse_schema_entry(line, e)) {
      errors.push_back({path, ln, "D9",
                        "malformed schema baseline line (want "
                        "'<writer->reader> <owner>=<value> <ops>')"});
      continue;
    }
    entries[e.id] = std::move(e);
  }
  return entries;
}

bool write_schema_baseline(const std::string& path,
                           const std::map<std::string, SchemaEntry>& entries) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# rushlint schema baseline (rule D9): one canonical fingerprint per\n"
         "# serializer pair, as '<writer->reader> <owner>=<value> <ops>'.\n"
         "# A fingerprint may only change together with a bump of its owning\n"
         "# version constant; scripts/schema_guard.sh enforces that ratchet\n"
         "# in CI.  Regenerate (after bumping the owner) with:\n"
         "#   rushlint --repo-root . --update-schema-baseline\n";
  for (const auto& [id, e] : entries) {
    out << id << " " << e.owner << "=" << e.value << " "
        << (e.ops.empty() ? "-" : e.ops) << "\n";
  }
  return static_cast<bool>(out);
}

/// The multi-pass schema analyzer: pairs serializers with deserializers
/// (D7), checks serialized-enum sync sites (D8), and computes the schema
/// fingerprints the D9 ratchet compares against the committed baseline.
class SchemaAnalyzer {
 public:
  explicit SchemaAnalyzer(std::vector<FileScan>& scans) : scans_(scans) {}

  /// Collection + pairing + op comparison + enum-sync.  Call once.
  std::vector<Finding> analyze() {
    std::vector<Finding> findings;
    for (std::size_t si = 0; si < scans_.size(); ++si) {
      collect_versions(si);
      collect_enums(si);
      collect_defs(si, findings);
    }
    build_pairs(findings);
    compare_pairs(findings);
    for (std::size_t si = 0; si < scans_.size(); ++si) {
      enum_sync(si, findings);
    }
    return findings;
  }

  /// Current D9 fingerprints; owner-resolution failures land in `errors`.
  /// Requires analyze() to have run.
  std::map<std::string, SchemaEntry> current_schema(
      std::vector<Finding>& errors) const {
    std::map<std::string, SchemaEntry> current;
    for (const PairInfo& p : pairs_) {
      const FunctionDef& w = defs_[p.writer];
      const FileScan& scan = scans_[w.scan];
      SchemaEntry e;
      e.id = p.id;
      e.file = scan.path;
      e.line = w.line;
      std::string joined;
      for (const WireOp& op : p.writer_ops) {
        if (!joined.empty()) joined += ",";
        joined += op.op;
      }
      e.ops = joined.empty() ? "-" : joined;
      std::string owner = w.schema_owner;
      if (owner.empty()) {
        // First version constant the writer body references owns the layout.
        const std::vector<Token>& t = scan.tokens;
        for (std::size_t j = w.body_open; j < w.body_close; ++j) {
          if (is_version_const(t[j].text)) {
            owner = t[j].text;
            break;
          }
        }
      }
      if (owner.empty()) {
        errors.push_back(
            {scan.path, w.line, "D9",
             "serializer '" + w.qualified +
                 "' has no owning version constant: reference a k*Version* "
                 "constant in the writer or add '// rushlint-schema-owner: "
                 "kName' inside its body"});
        continue;
      }
      const auto it = version_values_.find(owner);
      if (it == version_values_.end()) {
        errors.push_back({scan.path, w.line, "D9",
                          "serializer '" + w.qualified +
                              "' names version constant '" + owner +
                              "' but rushlint cannot find its value "
                              "(expected '" + owner + " = <integer>')"});
        continue;
      }
      e.owner = owner;
      e.value = it->second;
      current[e.id] = std::move(e);
    }
    return current;
  }

  /// D9: the committed baseline must exactly match the current schema, and
  /// a layout change must ride on a version bump.
  static std::vector<Finding> compare_schema(
      const std::map<std::string, SchemaEntry>& current,
      const std::map<std::string, SchemaEntry>& baseline,
      const std::string& baseline_label) {
    std::vector<Finding> findings;
    for (const auto& [id, cur] : current) {
      const auto it = baseline.find(id);
      if (it == baseline.end()) {
        findings.push_back({cur.file, cur.line, "D9",
                            "serializer pair '" + id +
                                "' is not in the schema baseline (" +
                                baseline_label +
                                ") — regenerate it with "
                                "--update-schema-baseline and commit"});
        continue;
      }
      const SchemaEntry& base = it->second;
      if (cur.ops != base.ops) {
        if (cur.owner == base.owner && cur.value == base.value) {
          findings.push_back(
              {cur.file, cur.line, "D9",
               "layout of '" + id + "' changed but its version constant " +
                   cur.owner + " is still " + std::to_string(cur.value) +
                   " — bump it, then regenerate the baseline with "
                   "--update-schema-baseline"});
        } else {
          findings.push_back(
              {cur.file, cur.line, "D9",
               "layout of '" + id + "' changed (version " + base.owner + "=" +
                   std::to_string(base.value) + " -> " + cur.owner + "=" +
                   std::to_string(cur.value) +
                   ") — regenerate the baseline with "
                   "--update-schema-baseline"});
        }
      } else if (cur.owner != base.owner || cur.value != base.value) {
        findings.push_back(
            {cur.file, cur.line, "D9",
             "version owner of '" + id + "' moved from " + base.owner + "=" +
                 std::to_string(base.value) + " to " + cur.owner + "=" +
                 std::to_string(cur.value) +
                 " without a layout change — regenerate the baseline"});
      }
    }
    for (const auto& [id, base] : baseline) {
      if (current.count(id) == 0) {
        findings.push_back({baseline_label, 0, "D9",
                            "stale schema baseline entry '" + id +
                                "': the serializer pair no longer exists — "
                                "regenerate the baseline"});
      }
    }
    return findings;
  }

 private:
  struct FunctionDef {
    std::string qualified;  // "Snapshot::parse", "serialize_event"
    std::string base;       // last identifier
    std::size_t scan = 0;
    int line = 0;
    std::size_t body_open = 0;   // token index of '{'
    std::size_t body_close = 0;  // token index of the matching '}'
    std::string pair_reader;     // in-body rushlint-pair-reader directive
    std::string schema_owner;    // in-body rushlint-schema-owner directive
  };

  struct WireOp {
    std::string op;
    int line = 0;
  };

  struct EnumInfo {
    std::string fullname;  // "EngineEvent::Kind" (enclosing record scopes)
    std::size_t scan = 0;
    int line = 0;
    std::vector<std::string> enumerators;
  };

  struct PairInfo {
    std::size_t writer = 0;
    std::size_t reader = 0;
    std::string id;
    std::vector<WireOp> writer_ops;
    std::vector<WireOp> reader_ops;
  };

  static const std::string& epath(const FileScan& scan) {
    return scan.fixture_path.empty() ? scan.path : scan.fixture_path;
  }

  static bool is_version_const(const std::string& s) {
    return s.size() > 1 && s[0] == 'k' &&
           s.find("Version") != std::string::npos;
  }

  /// src/common/wire.{h,cc} define the primitives themselves; their defs
  /// must not enter the pairing universe.
  static bool is_wire_primitive_file(const std::string& path) {
    return path == "src/common/wire.h" || path == "src/common/wire.cc";
  }

  static std::size_t match_group(const std::vector<Token>& t,
                                 std::size_t open, const char* o,
                                 const char* c) {
    int depth = 0;
    for (std::size_t j = open; j < t.size(); ++j) {
      if (t[j].text == o) {
        ++depth;
      } else if (t[j].text == c) {
        --depth;
        if (depth == 0) return j;
      }
    }
    return 0;
  }

  static bool is_wire_primitive_suffix(const std::string& s) {
    static const std::set<std::string> kPrims = {
        "u8",     "u16",  "u32",    "u64", "i8",    "i16",  "i32",  "i64",
        "double", "bool", "string", "raw", "bytes", "count", "float"};
    return kPrims.count(s) > 0;
  }

  /// put_u8 -> "u8" etc.  get_bytes is the read side of put_raw; get_count
  /// is the bounds-checked read side of a put_u64 element count.
  static const std::map<std::string, std::string>& prim_ops() {
    static const std::map<std::string, std::string> kOps = {
        {"put_u8", "u8"},         {"put_u32", "u32"},
        {"put_u64", "u64"},       {"put_i64", "i64"},
        {"put_double", "double"}, {"put_bool", "bool"},
        {"put_string", "string"}, {"put_raw", "raw"},
        {"get_u8", "u8"},         {"get_u32", "u32"},
        {"get_u64", "u64"},       {"get_i64", "i64"},
        {"get_double", "double"}, {"get_bool", "bool"},
        {"get_string", "string"}, {"get_bytes", "raw"},
        {"get_count", "u64"}};
    return kOps;
  }

  /// The reader name a convention-named writer implies, or "".
  static std::string reader_base_for(const std::string& base) {
    if (base == "serialize") return "parse";
    if (starts_with(base, "serialize")) return "de" + base;
    if (base == "save_state") return "restore_state";
    if (base == "save_warm_state") return "restore_warm_state";
    if (starts_with(base, "put_") && !is_wire_primitive_suffix(base.substr(4))) {
      return "get_" + base.substr(4);
    }
    if (starts_with(base, "encode_")) return "decode_" + base.substr(7);
    return "";
  }

  /// Reader-convention names that must not dangle without a writer.
  /// (get_* readers are deliberately absent: the put_* writer side already
  /// pins the pairing, and bare get_<noun> helper names are common.)
  static bool looks_like_reader_base(const std::string& base) {
    return starts_with(base, "deserialize") || base == "parse" ||
           base == "restore_state" || base == "restore_warm_state" ||
           starts_with(base, "decode_");
  }

  void collect_versions(std::size_t si) {
    const std::vector<Token>& t = scans_[si].tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (is_version_const(t[i].text) && t[i + 1].text == "=" &&
          !t[i + 2].text.empty() &&
          std::isdigit(static_cast<unsigned char>(t[i + 2].text[0]))) {
        if (version_values_.count(t[i].text) == 0) {
          version_values_[t[i].text] =
              std::strtoll(t[i + 2].text.c_str(), nullptr, 0);
        }
      }
    }
  }

  /// Registers enums marked `rushlint-serialized-enum` (mark on the enum's
  /// declaration line or the line directly above), with their fullname
  /// under enclosing struct/class scopes.
  void collect_enums(std::size_t si) {
    const FileScan& scan = scans_[si];
    const std::vector<Token>& t = scan.tokens;
    int depth = 0;
    std::vector<std::pair<std::string, int>> scopes;  // (name, open depth)
    std::string pending;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const std::string& w = t[i].text;
      if ((w == "struct" || w == "class") &&
          !(i > 0 && t[i - 1].text == "enum") && i + 1 < t.size() &&
          is_ident_start(t[i + 1].text[0])) {
        pending = t[i + 1].text;
      } else if (w == ";" || w == "=") {
        pending.clear();
      } else if (w == "{") {
        if (!pending.empty()) {
          scopes.emplace_back(pending, depth);
          pending.clear();
        }
        ++depth;
      } else if (w == "}") {
        --depth;
        while (!scopes.empty() && scopes.back().second >= depth) {
          scopes.pop_back();
        }
      } else if (w == "enum") {
        std::size_t j = i + 1;
        if (j < t.size() && (t[j].text == "class" || t[j].text == "struct")) {
          ++j;
        }
        if (j >= t.size() || !is_ident_start(t[j].text[0])) continue;
        EnumInfo info;
        info.scan = si;
        info.line = t[i].line;
        for (const auto& [name, at] : scopes) {
          (void)at;
          info.fullname += name + "::";
        }
        info.fullname += t[j].text;
        std::size_t k = j + 1;
        while (k < t.size() && t[k].text != "{" && t[k].text != ";") ++k;
        if (k >= t.size() || t[k].text != "{") continue;
        bool marked = false;
        for (const int mark : scan.serialized_enum_marks) {
          if (mark == info.line || mark + 1 == info.line) marked = true;
        }
        int d = 1;
        bool expecting = true;
        std::size_t m = k + 1;
        for (; m < t.size() && d > 0; ++m) {
          const std::string& e = t[m].text;
          if (e == "{") {
            ++d;
          } else if (e == "}") {
            --d;
          } else if (d == 1) {
            if (expecting && is_ident_start(e[0])) {
              info.enumerators.push_back(e);
              expecting = false;
            } else if (e == ",") {
              expecting = true;
            }
          }
        }
        if (marked && !info.enumerators.empty()) {
          enums_.push_back(std::move(info));
        }
        i = m > 0 ? m - 1 : i;  // resume after the enum body
        pending.clear();
      }
    }
  }

  /// Extracts function definitions (qualified name + body token span) from
  /// wire-relevant files, and attaches in-body schema directives.
  void collect_defs(std::size_t si, std::vector<Finding>& findings) {
    FileScan& scan = scans_[si];
    const std::vector<Token>& t = scan.tokens;
    bool wire = false;
    for (const Token& tok : t) {
      if (tok.text == "WireWriter" || tok.text == "WireReader") {
        wire = true;
        break;
      }
    }
    const bool collect = wire && !is_wire_primitive_file(epath(scan));
    const std::size_t first_def = defs_.size();
    if (collect) {
      static const std::set<std::string> kNotAFunction = {
          "if",        "while",    "for",        "switch",   "catch",
          "return",    "sizeof",   "alignof",    "decltype", "constexpr",
          "static_assert", "throw", "new",       "delete",   "assert",
          "defined",   "co_await", "co_return",  "co_yield", "requires"};
      for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!is_ident_start(t[i].text[0]) || t[i + 1].text != "(") continue;
        if (kNotAFunction.count(t[i].text) > 0) continue;
        const std::size_t close = match_group(t, i + 1, "(", ")");
        if (close == 0) continue;
        std::size_t j = close + 1;
        while (j < t.size()) {
          const std::string& w = t[j].text;
          if (w == "const" || w == "noexcept" || w == "override" ||
              w == "final" || w == "mutable" || w == "&") {
            ++j;
            continue;
          }
          if (w == "-" && j + 1 < t.size() && t[j + 1].text == ">") {
            // Trailing return type: skip to the body or terminator.
            j += 2;
            while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
            continue;
          }
          if (w == ":") {
            // Constructor initializer list: skip name-plus-group pairs.
            ++j;
            while (j < t.size()) {
              while (j < t.size() && t[j].text != "(" && t[j].text != "{" &&
                     t[j].text != ";") {
                ++j;
              }
              if (j >= t.size() || t[j].text == ";") break;
              const std::size_t g = t[j].text == "("
                                        ? match_group(t, j, "(", ")")
                                        : match_group(t, j, "{", "}");
              if (g == 0) {
                j = t.size();
                break;
              }
              // An initializer's '{' group may itself be the body start
              // (brace-init vs body is ambiguous token-wise); the comma
              // check below disambiguates.
              j = g + 1;
              if (j < t.size() && t[j].text == ",") {
                ++j;
                continue;
              }
              break;
            }
            continue;
          }
          break;
        }
        if (j >= t.size() || t[j].text != "{") continue;
        const std::size_t end = match_group(t, j, "{", "}");
        if (end == 0) continue;
        FunctionDef def;
        def.base = t[i].text;
        def.qualified = def.base;
        std::size_t b = i;
        while (b >= 3 && t[b - 1].text == ":" && t[b - 2].text == ":" &&
               is_ident_start(t[b - 3].text[0])) {
          def.qualified = t[b - 3].text + "::" + def.qualified;
          b -= 3;
        }
        def.scan = si;
        def.line = t[i].line;
        def.body_open = j;
        def.body_close = end;
        defs_.push_back(std::move(def));
      }
    }
    // Attach in-body directives to the innermost containing definition.
    auto attach = [&](const std::vector<std::pair<int, std::string>>& dirs,
                      const char* what, bool to_pair_reader) {
      for (const auto& [line, payload] : dirs) {
        FunctionDef* best = nullptr;
        for (std::size_t d = first_def; d < defs_.size(); ++d) {
          FunctionDef& def = defs_[d];
          if (line < t[def.body_open].line || line > t[def.body_close].line) {
            continue;
          }
          if (best == nullptr ||
              t[def.body_open].line >= t[best->body_open].line) {
            best = &def;
          }
        }
        if (best == nullptr) {
          findings.push_back(
              {scan.path, line, "D7",
               std::string(what) +
                   " directive is not inside a serializer body in a "
                   "wire-relevant file"});
        } else if (payload.empty()) {
          findings.push_back({scan.path, line, "D7",
                              std::string(what) + " directive has no value"});
        } else if (to_pair_reader) {
          best->pair_reader = payload;
        } else {
          best->schema_owner = payload;
        }
      }
    };
    attach(scan.pair_directives, "rushlint-pair-reader", true);
    attach(scan.owner_directives, "rushlint-schema-owner", false);
  }

  void build_pairs(std::vector<Finding>& findings) {
    std::map<std::string, std::vector<std::size_t>> by_base;
    std::map<std::string, std::vector<std::size_t>> by_qual;
    for (std::size_t d = 0; d < defs_.size(); ++d) {
      by_base[defs_[d].base].push_back(d);
      by_qual[defs_[d].qualified].push_back(d);
    }
    std::vector<char> as_writer(defs_.size(), 0);
    std::vector<char> as_reader(defs_.size(), 0);
    auto pick = [&](const std::vector<std::size_t>* cands,
                    std::size_t near_scan) -> long {
      if (cands == nullptr || cands->empty()) return -1;
      for (const std::size_t c : *cands) {
        if (defs_[c].scan == near_scan && !as_reader[c]) {
          return static_cast<long>(c);
        }
      }
      for (const std::size_t c : *cands) {
        if (!as_reader[c]) return static_cast<long>(c);
      }
      return -1;
    };
    auto lookup = [&](const std::map<std::string, std::vector<std::size_t>>& m,
                      const std::string& key)
        -> const std::vector<std::size_t>* {
      const auto it = m.find(key);
      return it == m.end() ? nullptr : &it->second;
    };
    for (std::size_t w = 0; w < defs_.size(); ++w) {
      const FunctionDef& writer = defs_[w];
      std::string reader_name;
      bool explicit_pair = false;
      if (!writer.pair_reader.empty()) {
        reader_name = writer.pair_reader;
        explicit_pair = true;
      } else {
        reader_name = reader_base_for(writer.base);
        if (reader_name.empty()) continue;
        if (writer.qualified != writer.base) {
          // Member writer: the reader lives on the same record.
          reader_name =
              writer.qualified.substr(
                  0, writer.qualified.size() - writer.base.size()) +
              reader_name;
        }
      }
      long r = pick(lookup(by_qual, reader_name), writer.scan);
      if (r < 0) r = pick(lookup(by_base, reader_name), writer.scan);
      if (r < 0) {
        findings.push_back(
            {scans_[writer.scan].path, writer.line, "D7",
             explicit_pair
                 ? "rushlint-pair-reader names '" + reader_name +
                       "', but no such function definition exists"
                 : "serializer '" + writer.qualified +
                       "' has no deserializer '" + reader_name +
                       "': every writer needs a paired reader (or an "
                       "explicit '// rushlint-pair-reader: <name>')"});
        continue;
      }
      as_writer[w] = 1;
      as_reader[static_cast<std::size_t>(r)] = 1;
      PairInfo p;
      p.writer = w;
      p.reader = static_cast<std::size_t>(r);
      p.id = writer.qualified + "->" + defs_[p.reader].qualified;
      pairs_.push_back(std::move(p));
    }
    for (std::size_t d = 0; d < defs_.size(); ++d) {
      if (!as_reader[d] && !as_writer[d] &&
          looks_like_reader_base(defs_[d].base)) {
        findings.push_back(
            {scans_[defs_[d].scan].path, defs_[d].line, "D7",
             "deserializer '" + defs_[d].qualified +
                 "' has no paired serializer: a read path nothing writes "
                 "is drift"});
      }
    }
    std::sort(pairs_.begin(), pairs_.end(),
              [](const PairInfo& a, const PairInfo& b) { return a.id < b.id; });
    for (const PairInfo& p : pairs_) {
      writer_bases_.insert(defs_[p.writer].base);
      reader_to_writer_base_[defs_[p.reader].base] = defs_[p.writer].base;
    }
  }

  /// Linear wire-op sequence of a definition body.  Primitive puts/gets map
  /// to their wire type; calls into paired serializers map to
  /// "call:<writer base>" on both sides (a call to the wrong side keeps a
  /// side marker so it can never compare equal).  A `wire-asym` suppression
  /// on the call line drops that op from the comparison.
  std::vector<WireOp> extract_ops(const FunctionDef& def, bool writer_side) {
    FileScan& scan = scans_[def.scan];
    const std::vector<Token>& t = scan.tokens;
    std::vector<WireOp> ops;
    for (std::size_t j = def.body_open; j + 1 < t.size() && j < def.body_close;
         ++j) {
      if (!is_ident_start(t[j].text[0]) || t[j + 1].text != "(") continue;
      const std::string& name = t[j].text;
      std::string op;
      const auto prim = prim_ops().find(name);
      if (prim != prim_ops().end()) {
        op = prim->second;
      } else if (writer_side) {
        if (writer_bases_.count(name) > 0) {
          op = "call:" + name;
        } else if (reader_to_writer_base_.count(name) > 0) {
          op = "call:" + reader_to_writer_base_[name] + "[reader-side]";
        }
      } else {
        if (reader_to_writer_base_.count(name) > 0) {
          op = "call:" + reader_to_writer_base_[name];
        } else if (writer_bases_.count(name) > 0) {
          op = "call:" + name + "[writer-side]";
        }
      }
      if (op.empty()) continue;
      if (absorb_suppression(scan, t[j].line, "wire-asym")) continue;
      ops.push_back({std::move(op), t[j].line});
    }
    return ops;
  }

  void compare_pairs(std::vector<Finding>& findings) {
    for (PairInfo& p : pairs_) {
      p.writer_ops = extract_ops(defs_[p.writer], /*writer_side=*/true);
      p.reader_ops = extract_ops(defs_[p.reader], /*writer_side=*/false);
      const std::size_t n =
          std::min(p.writer_ops.size(), p.reader_ops.size());
      std::size_t k = 0;
      while (k < n && p.writer_ops[k].op == p.reader_ops[k].op) ++k;
      if (k == p.writer_ops.size() && k == p.reader_ops.size()) continue;
      const FunctionDef& w = defs_[p.writer];
      const FunctionDef& r = defs_[p.reader];
      const std::string wat =
          k < p.writer_ops.size()
              ? p.writer_ops[k].op + " (" + scans_[w.scan].path + ":" +
                    std::to_string(p.writer_ops[k].line) + ")"
              : "ends";
      const std::string rat =
          k < p.reader_ops.size()
              ? p.reader_ops[k].op + " (" + scans_[r.scan].path + ":" +
                    std::to_string(p.reader_ops[k].line) + ")"
              : "ends";
      const int at = k < p.writer_ops.size() ? p.writer_ops[k].line : w.line;
      findings.push_back(
          {scans_[w.scan].path, at, "D7",
           "serializer pair '" + p.id + "' drifts at step " +
               std::to_string(k + 1) + ": writer " + wat + " vs reader " +
               rat +
               " — every field must be written and read in the same order "
               "(a deliberately non-linear read drops its op with "
               "'// rushlint: wire-asym(reason)')"});
    }
  }

  /// D8: every switch whose case labels resolve to a registered serialized
  /// enum, and every `rushlint-enum-site:` block, must mention all of the
  /// enum's enumerators.  A `default:` does not keep new kinds in sync.
  void enum_sync(std::size_t si, std::vector<Finding>& findings) {
    FileScan& scan = scans_[si];
    const std::vector<Token>& t = scan.tokens;
    auto emit = [&](int line, std::string message) {
      if (absorb_suppression(scan, line, "enum-sync-ok")) return;
      findings.push_back({scan.path, line, "D8", std::move(message)});
    };
    auto require_all = [&](const EnumInfo& info, std::size_t from,
                           std::size_t to, int line,
                           const std::string& site) {
      for (const std::string& enumerator : info.enumerators) {
        bool present = false;
        for (std::size_t j = from; j < to; ++j) {
          if (t[j].text == enumerator) {
            present = true;
            break;
          }
        }
        if (!present) {
          emit(line, site + " is a sync site for serialized enum '" +
                         info.fullname + "' but never mentions enumerator '" +
                         enumerator + "'");
        }
      }
    };
    // Switch sites.
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].text != "switch" || t[i + 1].text != "(") continue;
      const std::size_t close = match_group(t, i + 1, "(", ")");
      if (close == 0 || close + 1 >= t.size() || t[close + 1].text != "{") {
        continue;
      }
      const std::size_t end = match_group(t, close + 1, "{", "}");
      if (end == 0) continue;
      std::set<const EnumInfo*> hit;
      for (std::size_t j = close + 1; j < end; ++j) {
        if (t[j].text != "case") continue;
        // Label span: up to the first ':' that is not part of a '::'.
        std::size_t label_end = j + 1;
        while (label_end < end) {
          if (t[label_end].text == ":" &&
              (label_end + 1 >= end || t[label_end + 1].text != ":") &&
              t[label_end - 1].text != ":") {
            break;
          }
          ++label_end;
        }
        for (std::size_t m = j + 1; m < label_end; ++m) {
          if (!is_ident_start(t[m].text[0])) continue;
          // Chain-terminal identifier: not followed by '::'.
          if (m + 2 < label_end && t[m + 1].text == ":" &&
              t[m + 2].text == ":") {
            continue;
          }
          const std::string& enumerator = t[m].text;
          std::string qualifier;
          std::size_t b = m;
          while (b >= 3 && t[b - 1].text == ":" && t[b - 2].text == ":" &&
                 is_ident_start(t[b - 3].text[0])) {
            qualifier = qualifier.empty()
                            ? t[b - 3].text
                            : t[b - 3].text + "::" + qualifier;
            b -= 3;
          }
          const EnumInfo* match = nullptr;
          bool ambiguous = false;
          for (const EnumInfo& info : enums_) {
            if (std::find(info.enumerators.begin(), info.enumerators.end(),
                          enumerator) == info.enumerators.end()) {
              continue;
            }
            if (!qualifier.empty() && info.fullname != qualifier &&
                !(info.fullname.size() > qualifier.size() + 2 &&
                  info.fullname.compare(
                      info.fullname.size() - qualifier.size() - 2, 2, "::") ==
                      0 &&
                  info.fullname.compare(
                      info.fullname.size() - qualifier.size(),
                      qualifier.size(), qualifier) == 0)) {
              continue;
            }
            if (match != nullptr && match != &info) ambiguous = true;
            match = &info;
          }
          if (match != nullptr && !ambiguous) hit.insert(match);
        }
        j = label_end;
      }
      for (const EnumInfo* info : hit) {
        require_all(*info, close + 1, end, t[i].line, "this switch");
      }
    }
    // Directive sites: the next '{'..'}' block at/after the directive line.
    for (const auto& [line, payload] : scan.enum_site_directives) {
      std::istringstream fields(payload);
      std::string enum_name;
      std::string label;
      fields >> enum_name;
      std::getline(fields, label);
      while (!label.empty() && label.front() == ' ') label.erase(label.begin());
      if (label.empty()) label = scan.path + ":" + std::to_string(line);
      const EnumInfo* match = nullptr;
      bool ambiguous = false;
      for (const EnumInfo& info : enums_) {
        if (info.fullname == enum_name ||
            (info.fullname.size() > enum_name.size() + 2 &&
             info.fullname.compare(info.fullname.size() - enum_name.size() - 2,
                                   2, "::") == 0 &&
             info.fullname.compare(info.fullname.size() - enum_name.size(),
                                   enum_name.size(), enum_name) == 0)) {
          if (match != nullptr) ambiguous = true;
          match = &info;
        }
      }
      if (match == nullptr || ambiguous) {
        emit(line, "rushlint-enum-site names " +
                       std::string(ambiguous ? "ambiguous" : "unknown") +
                       " serialized enum '" + enum_name +
                       "' (mark the enum with 'rushlint-serialized-enum')");
        continue;
      }
      std::size_t open = 0;
      for (std::size_t j = 0; j < t.size(); ++j) {
        if (t[j].line >= line && t[j].text == "{") {
          open = j;
          break;
        }
      }
      const std::size_t end_block =
          open == 0 ? 0 : match_group(t, open, "{", "}");
      if (end_block == 0) {
        emit(line, "rushlint-enum-site '" + label +
                       "' has no '{...}' block after it to check");
        continue;
      }
      require_all(*match, open, end_block, line, "enum site '" + label + "'");
    }
  }

  std::vector<FileScan>& scans_;
  std::vector<FunctionDef> defs_;
  std::vector<EnumInfo> enums_;
  std::vector<PairInfo> pairs_;
  std::map<std::string, long long> version_values_;
  std::set<std::string> writer_bases_;
  std::map<std::string, std::string> reader_to_writer_base_;
};

// ---------------------------------------------------------------------------
// L1: the module layering DAG.  Rank is position from the bottom; an include
// is legal only into the same module or a strictly lower rank.  The table
// mirrors DESIGN.md §5g and the CMake target graph — adding a module means
// adding it here, consciously, at a rank.

int module_rank(const std::string& module) {
  static const std::map<std::string, int> kRank = {
      {"common", 0},
      {"stats", 1},   {"utility", 1},   {"sim", 1},      {"lp", 1},
      {"config", 1},
      {"robust", 2},  {"estimator", 2}, {"tas", 2},
      {"cluster", 3},
      {"metrics", 4}, {"baselines", 4}, {"workload", 4}, {"core", 4},
      {"state", 4},
      {"experiments", 5}, {"engine", 5},
      {"daemon", 6}};
  const auto it = kRank.find(module);
  return it == kRank.end() ? -1 : it->second;
}

/// The `src/<module>/` component of a path, or "" when not under src/.
std::string module_of(const std::string& path) {
  if (!starts_with(path, "src/")) return "";
  const std::size_t slash = path.find('/', 4);
  return slash == std::string::npos ? "" : path.substr(4, slash - 4);
}

/// Layering findings for one file.  `path` is the effective path (a
/// fixture's claimed path in self-test).  src/check is exempt in both
/// directions: the invariant auditor is cyclic with cluster by design.
std::vector<Finding> layering_findings(const FileScan& scan,
                                       const std::string& path) {
  std::vector<Finding> findings;
  const std::string module = module_of(path);
  if (module.empty() || module == "check") return findings;
  const int from = module_rank(module);
  if (from < 0) return findings;  // unranked module: not yet in the DAG
  for (const auto& [line, target] : scan.includes) {
    const std::string included = module_of(target);
    if (included.empty() || included == module || included == "check") continue;
    const int to = module_rank(included);
    if (to < 0 || to < from) continue;
    findings.push_back(
        {path, line, "L1",
         "src/" + module + "/ (rank " + std::to_string(from) +
             ") must not include src/" + included + "/ (rank " +
             std::to_string(to) +
             "): the layering DAG admits only strictly-downward includes"});
  }
  return findings;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Options {
  std::string repo_root;
  std::string baseline;
  std::string schema_baseline;
  std::string self_test_dir;
  bool force_plan_dir = false;
  bool github = false;
  bool update_schema_baseline = false;
  std::vector<std::string> files;
};

int usage() {
  std::cerr << "usage: rushlint --repo-root DIR [--baseline FILE]\n"
               "                [--schema-baseline FILE | "
               "--update-schema-baseline] [--github]\n"
               "       rushlint --self-test FIXTURE_DIR\n"
               "       rushlint [--plan-dir] [--github] FILE...\n"
               "       rushlint --list-rules\n";
  return 2;
}

int list_rules() {
  std::cout
      << "rushlint rules (suppression tag in [brackets]; see "
         "tools/rushlint/README.md):\n"
         "  D1   nondeterminism sources (random_device, rand, wall clocks) "
         "banned outside bench/, rng, daemon [nondeterminism-ok]\n"
         "  D2   iteration over unordered containers in plan-affecting code "
         "[order-insensitive]\n"
         "  D3   sorts keyed on a double without a deterministic tiebreak "
         "[float-sort-ok]\n"
         "  D4   suppression hygiene: reasons required, no unknown tags, no "
         "stale directives, budget ratchet (unsuppressable)\n"
         "  D5   dimension-named locals declared as bare double in plan dirs "
         "[unit-ok]\n"
         "  D6   .value() unit unwrapping outside the kernel allowlist "
         "[unit-escape]\n"
         "  D7   serializer/deserializer read-write symmetry: same wire ops, "
         "same order (per-op [wire-asym] drops a deliberate non-linear op)\n"
         "  D8   serialized-enum sync: every dispatch switch and marked enum "
         "site mentions every enumerator [enum-sync-ok]\n"
         "  D9   schema version ratchet: fingerprints must match the "
         "committed schema.baseline; layout changes need a version bump "
         "(unsuppressable; scripts/schema_guard.sh enforces in CI)\n"
         "  D10  raw-memory ban in serialization scope: no reinterpret_cast/"
         "memcpy/memmove/bit_cast/hton*/ntoh* [raw-memory-ok]\n"
         "  L1   module layering DAG: includes only point strictly downward "
         "(unsuppressable)\n"
         "  R1-R4  grep rules in scripts/lint.sh: #pragma once in headers; "
         "no 'using namespace' in headers; require()/ensure()/RUSH_DCHECK() "
         "carry messages; no bare 'throw std::...' outside error.h "
         "[R4-ok]\n";
  return 0;
}

void print_findings(const std::vector<Finding>& findings, bool github = false) {
  for (const Finding& f : findings) {
    if (github) {
      // GitHub Actions workflow-command form: the annotation lands on the
      // PR diff at file:line.  Messages are single-line by construction.
      std::cout << "::error file=" << f.file << ",line=" << f.line
                << "::rushlint " << f.rule << ": " << f.message << "\n";
    } else {
      std::cout << f.file << ":" << f.line << ": rushlint " << f.rule << ": "
                << f.message << "\n";
    }
  }
}

/// D4 findings shared by every mode: malformed/unreasoned directives,
/// unknown tags, and stale (unused) suppressions.
std::vector<Finding> suppression_findings(const FileScan& scan) {
  std::vector<Finding> findings;
  for (const Suppression& s : scan.suppressions) {
    if (s.malformed) {
      findings.push_back({scan.path, s.line, "D4", s.problem});
    } else if (!known_tag(s.tag)) {
      findings.push_back({scan.path, s.line, "D4",
                          "unknown suppression tag '" + s.tag +
                              "' (expected nondeterminism-ok, "
                              "order-insensitive, float-sort-ok, unit-ok, "
                              "unit-escape, wire-asym, enum-sync-ok or "
                              "raw-memory-ok)"});
    } else if (!s.used) {
      findings.push_back({scan.path, s.line, "D4",
                          "stale suppression '" + s.tag +
                              "': nothing on this line or the next matches "
                              "the rule it silences"});
    }
  }
  return findings;
}

int run_self_test(const std::string& dir) {
  std::vector<fs::path> fixtures;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && has_cxx_extension(entry.path())) {
      fixtures.push_back(entry.path());
    }
  }
  std::sort(fixtures.begin(), fixtures.end());
  if (fixtures.empty()) {
    std::cerr << "rushlint --self-test: no fixtures in " << dir << "\n";
    return 2;
  }
  int failures = 0;
  for (const fs::path& fixture : fixtures) {
    const std::string name = fixture.filename().string();
    // Expectation from the name: dN_pos_*/lN_pos_* fires exactly rule
    // DN/LN once; dN_neg_*/lN_neg_* is silent.  N may be multi-digit.
    std::size_t digits = 0;
    while (1 + digits < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[1 + digits]))) {
      ++digits;
    }
    if ((name[0] != 'd' && name[0] != 'l') || digits == 0 ||
        name.size() < digits + 6 || name[1 + digits] != '_') {
      std::cerr << "rushlint --self-test: fixture '" << name
                << "' must be named dN_pos_*.cc, dN_neg_*.cc, lN_pos_*.cc "
                   "or lN_neg_*.cc\n";
      ++failures;
      continue;
    }
    const std::string rule =
        std::string(1, static_cast<char>(std::toupper(name[0]))) +
        name.substr(1, digits);
    const bool expect_fire = name.substr(2 + digits, 3) == "pos";

    // Each fixture is analyzed in isolation with plan-dir rules forced on,
    // so a fixture declares exactly the state it exercises.  Path-scoped
    // rules (L1, the D6 kernel allowlist, the D10 scope) see the path the
    // fixture claims via `// rushlint-fixture-path:`, not the fixture
    // directory, and `// rushlint-schema-expect:` lines act as the
    // fixture's D9 baseline.
    std::vector<FileScan> scans;
    scans.push_back(lex_file(name, read_file(fixture)));
    FileScan& scan = scans.back();
    const std::string effective_path =
        scan.fixture_path.empty() ? scan.path : scan.fixture_path;
    Analyzer analyzer;
    analyzer.collect_decls(scan);
    std::vector<Finding> findings = analyzer.check_file(
        scan, /*plan_dir=*/true, is_d1_exempt(effective_path),
        is_unit_kernel(effective_path), scan.suppressions);
    for (Finding& f : layering_findings(scan, effective_path)) {
      findings.push_back(std::move(f));
    }
    for (Finding& f : raw_memory_findings(scan, effective_path)) {
      findings.push_back(std::move(f));
    }
    SchemaAnalyzer schema(scans);
    for (Finding& f : schema.analyze()) findings.push_back(std::move(f));
    if (!scan.schema_expects.empty()) {
      std::map<std::string, SchemaEntry> baseline;
      for (const auto& [line, payload] : scan.schema_expects) {
        SchemaEntry e;
        if (!parse_schema_entry(payload, e)) {
          findings.push_back({scan.path, line, "D9",
                              "malformed rushlint-schema-expect line"});
          continue;
        }
        baseline[e.id] = std::move(e);
      }
      std::vector<Finding> errs;
      const std::map<std::string, SchemaEntry> current =
          schema.current_schema(errs);
      for (Finding& f : errs) findings.push_back(std::move(f));
      for (Finding& f : SchemaAnalyzer::compare_schema(
               current, baseline, name + " (schema-expect)")) {
        findings.push_back(std::move(f));
      }
    }
    // D4 runs last: the schema passes mark wire-asym suppressions used.
    for (Finding& f : suppression_findings(scan)) findings.push_back(std::move(f));

    bool ok;
    if (expect_fire) {
      ok = findings.size() == 1 && findings[0].rule == rule;
    } else {
      ok = findings.empty();
    }
    if (ok) {
      std::cout << "PASS " << name << "\n";
    } else {
      ++failures;
      std::cout << "FAIL " << name << ": expected "
                << (expect_fire ? "exactly one " + rule + " finding"
                                : std::string("silence"))
                << ", got " << findings.size() << " finding(s)\n";
      print_findings(findings);
    }
  }
  if (failures > 0) {
    std::cout << "rushlint self-test: FAILED (" << failures << " fixture(s))\n";
    return 1;
  }
  std::cout << "rushlint self-test: OK (" << fixtures.size() << " fixtures)\n";
  return 0;
}

std::map<std::string, int> read_baseline(const std::string& path) {
  std::map<std::string, int> budget;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    int count = 0;
    if (fields >> tag >> count) budget[tag] = count;
  }
  return budget;
}

int run_scan(const Options& options) {
  // Assemble the scan set.
  std::vector<std::pair<fs::path, std::string>> files;  // (disk path, label)
  if (!options.repo_root.empty()) {
    const fs::path root(options.repo_root);
    // bench/ joined the scan set in v3: it is D1-exempt and not a plan
    // dir, but its daemon drivers dispatch on serialized enums (D8).
    for (const char* top : {"src", "tests", "examples", "bench"}) {
      const fs::path dir = root / top;
      if (!fs::exists(dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (entry.is_regular_file() && has_cxx_extension(entry.path())) {
          files.emplace_back(entry.path(),
                             fs::relative(entry.path(), root).generic_string());
        }
      }
    }
  }
  for (const std::string& f : options.files) {
    files.emplace_back(fs::path(f), fs::path(f).generic_string());
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  if (files.empty()) return usage();

  std::vector<FileScan> scans;
  scans.reserve(files.size());
  Analyzer analyzer;
  for (const auto& [disk, label] : files) {
    scans.push_back(lex_file(label, read_file(disk)));
    analyzer.collect_decls(scans.back());
  }

  std::vector<Finding> findings;
  for (FileScan& scan : scans) {
    const bool plan_dir = options.force_plan_dir || is_plan_dir(scan.path);
    std::vector<Finding> file_findings =
        analyzer.check_file(scan, plan_dir, is_d1_exempt(scan.path),
                            is_unit_kernel(scan.path), scan.suppressions);
    for (Finding& f : file_findings) findings.push_back(std::move(f));
    for (Finding& f : layering_findings(scan, scan.path)) {
      findings.push_back(std::move(f));
    }
    for (Finding& f : raw_memory_findings(scan, scan.path)) {
      findings.push_back(std::move(f));
    }
  }

  // Schema passes run over the whole scan set at once: serializer pairs
  // and enum sync sites cross file boundaries.
  SchemaAnalyzer schema(scans);
  for (Finding& f : schema.analyze()) findings.push_back(std::move(f));
  if (options.update_schema_baseline) {
    std::vector<Finding> errs;
    const std::map<std::string, SchemaEntry> current =
        schema.current_schema(errs);
    for (Finding& f : errs) findings.push_back(std::move(f));
    if (errs.empty()) {
      std::string path = options.schema_baseline;
      if (path.empty()) {
        path = (fs::path(options.repo_root.empty() ? "." : options.repo_root) /
                "tools/rushlint/schema.baseline")
                   .generic_string();
      }
      if (!write_schema_baseline(path, current)) {
        std::cerr << "rushlint: cannot write schema baseline " << path << "\n";
        return 2;
      }
      std::cerr << "rushlint: wrote " << current.size()
                << " schema fingerprint(s) to " << path << "\n";
    }
  } else if (!options.schema_baseline.empty()) {
    std::vector<Finding> errs;
    const std::map<std::string, SchemaEntry> current =
        schema.current_schema(errs);
    for (Finding& f : errs) findings.push_back(std::move(f));
    std::vector<Finding> baseline_errs;
    const std::map<std::string, SchemaEntry> baseline =
        read_schema_baseline(options.schema_baseline, baseline_errs);
    for (Finding& f : baseline_errs) findings.push_back(std::move(f));
    for (Finding& f : SchemaAnalyzer::compare_schema(
             current, baseline, options.schema_baseline)) {
      findings.push_back(std::move(f));
    }
  }

  // D4 runs last: the schema passes mark wire-asym suppressions used.
  std::map<std::string, int> used_suppressions;
  for (FileScan& scan : scans) {
    for (Finding& f : suppression_findings(scan)) findings.push_back(std::move(f));
    for (const Suppression& s : scan.suppressions) {
      if (s.used) ++used_suppressions[s.tag];
    }
  }

  print_findings(findings, options.github);
  std::map<std::string, int> per_rule;
  for (const Finding& f : findings) ++per_rule[f.rule];
  if (options.github) {
    for (const auto& [rule, count] : per_rule) {
      std::cout << "::notice::rushlint " << rule << ": " << count
                << " finding(s)\n";
    }
  }

  bool budget_failed = false;
  if (!options.baseline.empty()) {
    // D4 ratchet: the suppression budget can only shrink.  More used
    // suppressions than the baseline fails; fewer prints a reminder to
    // tighten the checked-in numbers.
    const std::map<std::string, int> budget = read_baseline(options.baseline);
    for (const auto& [tag, used] : used_suppressions) {
      const auto it = budget.find(tag);
      const int allowed = it == budget.end() ? 0 : it->second;
      if (used > allowed) {
        std::cout << "rushlint D4: " << used << " '" << tag
                  << "' suppressions in use, but the baseline allows only "
                  << allowed << " (" << options.baseline
                  << ") — fix the code instead of suppressing\n";
        budget_failed = true;
        ++per_rule["D4"];
      }
    }
    for (const auto& [tag, allowed] : budget) {
      const auto it = used_suppressions.find(tag);
      const int used = it == used_suppressions.end() ? 0 : it->second;
      if (used < allowed) {
        std::cerr << "rushlint: note: only " << used << " '" << tag
                  << "' suppressions remain (baseline " << allowed
                  << ") — ratchet " << options.baseline << " down\n";
      }
    }
  }

  if (!findings.empty() || budget_failed) {
    std::cout << "rushlint: FAILED (";
    bool first = true;
    for (const auto& [rule, count] : per_rule) {
      if (!first) std::cout << ", ";
      std::cout << rule << ": " << count;
      first = false;
    }
    std::cout << ")\n";
    return 1;
  }
  std::cout << "rushlint: OK (" << files.size() << " files";
  if (!used_suppressions.empty()) {
    std::cout << ",";
    for (const auto& [tag, used] : used_suppressions) {
      std::cout << " " << used << " " << tag;
    }
    std::cout << " suppression(s)";
  }
  std::cout << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--repo-root" && a + 1 < argc) {
      options.repo_root = argv[++a];
    } else if (arg == "--baseline" && a + 1 < argc) {
      options.baseline = argv[++a];
    } else if (arg == "--schema-baseline" && a + 1 < argc) {
      options.schema_baseline = argv[++a];
    } else if (arg == "--update-schema-baseline") {
      options.update_schema_baseline = true;
    } else if (arg == "--list-rules") {
      return list_rules();
    } else if (arg == "--self-test" && a + 1 < argc) {
      options.self_test_dir = argv[++a];
    } else if (arg == "--plan-dir") {
      options.force_plan_dir = true;
    } else if (arg == "--github") {
      options.github = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      options.files.push_back(arg);
    }
  }
  if (!options.self_test_dir.empty()) return run_self_test(options.self_test_dir);
  if (options.repo_root.empty() && options.files.empty()) return usage();
  return run_scan(options);
}
