// Fixture: std::random_device is a nondeterminism source (rule D1).
#include <random>

int fixture() {
  std::random_device entropy;
  return static_cast<int>(entropy());
}
