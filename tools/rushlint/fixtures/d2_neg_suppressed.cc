// Fixture: an order-insensitive fold over a hash container, silenced with a
// reasoned suppression on the line above the loop — no findings.
#include <unordered_map>

int fixture(const std::unordered_map<int, int>& table) {
  int sum = 0;
  // rushlint: order-insensitive(pure count; addition is commutative)
  for (const auto& [key, value] : table) {
    sum += value;
    static_cast<void>(key);
  }
  return sum;
}
