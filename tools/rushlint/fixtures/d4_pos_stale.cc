// Fixture: a well-formed suppression with nothing to suppress is stale
// (rule D4) — dead suppressions hide future regressions.
#include <vector>

int fixture(const std::vector<int>& values) {
  int sum = 0;
  // rushlint: order-insensitive(pure count; addition is commutative)
  for (const int v : values) sum += v;
  return sum;
}
