// D7 positive: a serializer with no deserializer — the bytes it writes can
// never be read back, so the persistence path is write-only by mistake.
struct Orphan {
  unsigned id;
};

void serialize_orphan(const Orphan& o, WireWriter& out) {
  out.put_u32(o.id);
}
