// Fixture: a clock read silenced by a reasoned nondeterminism-ok suppression
// on the line above — no findings (and the suppression is used, so no D4).
#include <chrono>

long fixture() {
  // rushlint: nondeterminism-ok(profiler fixture; wall time is reported, never fed back into the plan)
  const auto start = std::chrono::steady_clock::now();
  return start.time_since_epoch().count();
}
