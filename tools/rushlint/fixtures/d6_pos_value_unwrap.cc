// D6 positive: unwrapping a unit with .value() outside the allowlisted
// numeric kernels must fire (this fixture claims no kernel path).
template <class Quantity>
double doubled_raw(const Quantity& q) {
  return q.value() * 2.0;
}
