// Fixture: std::sort on a bare double key (via the Seconds alias) with no
// tiebreak — tied keys land in unspecified order (rule D3).
#include <algorithm>
#include <cstdint>
#include <vector>

using Seconds = double;

struct Job {
  std::int64_t id = 0;
  Seconds deadline = 0.0;
};

void fixture(std::vector<Job>& jobs) {
  std::sort(jobs.begin(), jobs.end(),
            [](const Job& a, const Job& b) { return a.deadline < b.deadline; });
}
