// Fixture: a suppression with a made-up tag (rule D4).
#include <unordered_map>

int fixture(const std::unordered_map<int, int>& table) {
  // rushlint: trust-me(it is probably fine)
  return static_cast<int>(table.size());
}
