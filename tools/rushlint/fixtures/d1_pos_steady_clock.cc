// Fixture: reading a clock in plan code is a nondeterminism source (rule D1).
#include <chrono>

long fixture() {
  const auto start = std::chrono::steady_clock::now();
  return start.time_since_epoch().count();
}
