// D8 negative: the dispatch switch names every enumerator of the
// serialized enum — fully in sync, nothing to report.
struct Record {
  // rushlint-serialized-enum
  enum class Kind : unsigned char { kAlpha = 1, kBeta = 2, kGamma = 3 };
};

int dispatch(Record::Kind kind) {
  switch (kind) {
    case Record::Kind::kAlpha:
      return 1;
    case Record::Kind::kBeta:
      return 2;
    case Record::Kind::kGamma:
      return 3;
  }
  return 0;
}
