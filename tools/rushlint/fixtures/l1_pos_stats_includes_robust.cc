// L1 positive: src/stats (rank 1) reaching up into src/robust (rank 2) —
// the arena is a stats-layer container and must not know about the WCDE
// solver built on top of it.
// rushlint-fixture-path: src/stats/pmf_arena_extras.cc
#include "src/robust/wcde_batch.h"
