// D9 negative: layout, owner and version all match the committed
// fingerprint — the ratchet stays quiet.
// rushlint-schema-expect: serialize_probe->deserialize_probe kProbeVersion=1 u8,u32,double
constexpr unsigned char kProbeVersion = 1;

struct Probe {
  unsigned id;
  double score;
};

void serialize_probe(const Probe& p, WireWriter& out) {
  out.put_u8(kProbeVersion);
  out.put_u32(p.id);
  out.put_double(p.score);
}

Probe deserialize_probe(WireReader& in) {
  Probe p;
  p.version = in.get_u8();
  p.id = in.get_u32();
  p.score = in.get_double();
  return p;
}
