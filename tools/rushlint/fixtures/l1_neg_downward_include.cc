// L1 negative: strictly-downward includes, a same-module include, and the
// src/check exemption (the invariant auditor is cyclic with cluster by
// design) are all legal.
// rushlint-fixture-path: src/core/planner_extras.cc
#include "src/check/invariant_auditor.h"
#include "src/common/types.h"
#include "src/core/rush_planner.h"
#include "src/robust/wcde.h"
