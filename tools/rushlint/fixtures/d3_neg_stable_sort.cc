// Fixture: std::stable_sort on a double key — stability pins tied elements to
// their input order, nothing fires.
#include <algorithm>
#include <vector>

using Utility = double;

struct Bid {
  Utility value = 0.0;
};

void fixture(std::vector<Bid>& bids) {
  std::stable_sort(bids.begin(), bids.end(),
                   [](const Bid& a, const Bid& b) { return a.value < b.value; });
}
