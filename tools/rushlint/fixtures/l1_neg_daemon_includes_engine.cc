// L1 negative: src/daemon (rank 6) includes strictly-downward — engine
// (5), state (4), core (4), config (1) — all legal.
// rushlint-fixture-path: src/daemon/session_extras.cc
#include "src/config/job_config.h"
#include "src/core/rush_scheduler.h"
#include "src/engine/engine.h"
#include "src/state/snapshot.h"
