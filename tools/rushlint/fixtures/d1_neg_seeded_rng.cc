// Fixture: deterministic seeded RNG use, plus identifiers that merely embed
// the flagged words ("operand", "timestamp", "random_shuffle_count") — none
// of this is rule D1.  The string and comment below must also stay invisible
// to the lexer.
#include <cstdint>

// std::random_device would be flagged if this comment were scanned.
static const char* kDoc = "calls std::rand() and time(nullptr) at startup";

std::uint64_t fixture(std::uint64_t seed, std::uint64_t operand) {
  std::uint64_t random_shuffle_count = seed ^ operand;
  std::uint64_t timestamp = 0;
  for (int i = 0; i < 3; ++i) {
    random_shuffle_count = random_shuffle_count * 6364136223846793005ULL + 1442695040888963407ULL;
    timestamp += random_shuffle_count >> 33;
  }
  return timestamp + (kDoc != nullptr ? 1 : 0);
}
