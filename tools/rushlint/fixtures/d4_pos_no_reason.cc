// Fixture: a suppression with an empty reason (rule D4) — every suppression
// must say why the silenced pattern is safe.
#include <vector>

int fixture(const std::vector<int>& values) {
  // rushlint: order-insensitive()
  return values.empty() ? 0 : values.front();
}
