// Fixture: time(nullptr) is a nondeterminism source (rule D1).
#include <ctime>

long fixture() { return static_cast<long>(time(nullptr)); }
