// Fixture: an explicit iterator loop over a hash container is still hash-order
// iteration (rule D2).
#include <unordered_set>

int fixture(const std::unordered_set<int>& members) {
  int out = 0;
  for (auto it = members.begin(); it != members.end(); ++it) {
    out = out * 31 + *it;
  }
  return out;
}
