// D8 negative: an ordinary (never serialized) enum may have partial
// switches — only marked enums carry the sync obligation.
struct Widget {
  enum class Kind : unsigned char { kRound = 1, kSquare = 2, kHex = 3 };
};

int area_class(Widget::Kind kind) {
  switch (kind) {
    case Widget::Kind::kRound:
      return 1;
    default:
      return 0;
  }
}
