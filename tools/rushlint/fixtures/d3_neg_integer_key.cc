// Fixture: sorting on an integral key — ids are unique, ties cannot happen,
// nothing fires.
#include <algorithm>
#include <cstdint>
#include <vector>

struct Attempt {
  std::int64_t id = 0;
};

void fixture(std::vector<Attempt>& attempts) {
  std::sort(attempts.begin(), attempts.end(),
            [](const Attempt& a, const Attempt& b) { return a.id < b.id; });
}
