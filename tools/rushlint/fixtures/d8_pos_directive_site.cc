// D8 positive: a name table marked as an enum site omits a kind — logs
// would print garbage for it, and nobody would notice at compile time.
struct Frame {
  // rushlint-serialized-enum
  enum class Kind : unsigned char { kOpen = 1, kData = 2, kClose = 3 };
};

// rushlint-enum-site: Frame::Kind frame kind table
int frame_kind_table() {
  const int table[] = {
      static_cast<int>(Frame::Kind::kOpen),
      static_cast<int>(Frame::Kind::kData),
  };
  return static_cast<int>(sizeof(table));
}
