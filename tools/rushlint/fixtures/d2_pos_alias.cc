// Fixture: a type alias does not hide the hash container underneath
// (rule D2 — the alias table must see through `using`).
#include <cstdint>
#include <unordered_map>

using AttemptTable = std::unordered_map<std::uint64_t, int>;

int fixture(const AttemptTable& attempts) {
  int out = 0;
  for (const auto& [id, state] : attempts) {
    out = out * 31 + static_cast<int>(id) + state;
  }
  return out;
}
