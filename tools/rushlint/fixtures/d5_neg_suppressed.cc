// D5 negative: a public config surface keeps the bare double on purpose and
// says why.
struct KnobConfig {
  // rushlint: unit-ok(public config surface mirrored into XML; typed accessor exists)
  double theta = 0.9;
};
