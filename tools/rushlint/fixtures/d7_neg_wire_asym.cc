// D7 negative: the trailing checksum is deliberately read first, from the
// tail of the buffer — each side drops its non-linear op with wire-asym.
struct Ledger {
  unsigned entries;
  double total;
  unsigned long long checksum;
};

void serialize_ledger(const Ledger& l, WireWriter& out) {
  out.put_u32(l.entries);
  out.put_double(l.total);
  // rushlint: wire-asym(trailing checksum; the reader consumes it first)
  out.put_u64(l.checksum);
}

Ledger deserialize_ledger(WireReader& in, WireReader& tail) {
  Ledger l;
  // rushlint: wire-asym(checksum first, from the 8-byte tail)
  l.checksum = tail.get_u64();
  l.entries = in.get_u32();
  l.total = in.get_double();
  return l;
}
