// D7 positive: the writer emits a flags byte the reader never consumes —
// every later field of the stream is silently misparsed.
struct Probe {
  unsigned id;
  unsigned char flags;
  double score;
};

void serialize_probe(const Probe& p, WireWriter& out) {
  out.put_u32(p.id);
  out.put_u8(p.flags);
  out.put_double(p.score);
}

Probe deserialize_probe(WireReader& in) {
  Probe p;
  p.id = in.get_u32();
  p.score = in.get_double();
  return p;
}
