// Fixture: the same-line suppression placement — the directive sits on the
// flagged line itself, absorbs the D2 finding, and is counted as used.
#include <unordered_map>

int fixture(const std::unordered_map<int, int>& table) {
  int sum = 0;
  for (const auto& [key, value] : table) {  // rushlint: order-insensitive(pure sum; addition is commutative)
    sum += value;
    static_cast<void>(key);
  }
  return sum;
}
