// D7 negative: writer and reader move in lockstep, including through the
// shared header helpers — calls to pair members compare by writer base.
struct Header {
  unsigned version;
  unsigned long long length;
};
struct Block {
  Header header;
};

void put_header(const Header& h, WireWriter& out) {
  out.put_u32(h.version);
  out.put_u64(h.length);
}

Header get_header(WireReader& in) {
  Header h;
  h.version = in.get_u32();
  h.length = in.get_u64();
  return h;
}

void serialize_block(const Block& b, WireWriter& out) {
  put_header(b.header, out);
  out.put_string(b.payload);
}

Block deserialize_block(WireReader& in) {
  Block b;
  b.header = get_header(in);
  b.payload = in.get_string();
  return b;
}
