// L1 positive: src/stats (rank 1) reaching up into src/core (rank 4) —
// the layering DAG admits only strictly-downward includes.
// rushlint-fixture-path: src/stats/histogram_extras.cc
#include "src/core/rush_planner.h"
