// D9 positive: the pair gained a field but kProbeVersion did not move —
// the schema-expect line below pins the committed fingerprint.
// rushlint-schema-expect: serialize_probe->deserialize_probe kProbeVersion=1 u8,u32
constexpr unsigned char kProbeVersion = 1;

struct Probe {
  unsigned id;
  double score;
};

void serialize_probe(const Probe& p, WireWriter& out) {
  out.put_u8(kProbeVersion);
  out.put_u32(p.id);
  out.put_double(p.score);
}

Probe deserialize_probe(WireReader& in) {
  Probe p;
  p.version = in.get_u8();
  p.id = in.get_u32();
  p.score = in.get_double();
  return p;
}
