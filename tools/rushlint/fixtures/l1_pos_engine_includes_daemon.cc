// L1 positive: src/engine (rank 5) including src/daemon (rank 6) — the
// transport-agnostic engine must not know about the socket layer above it.
// rushlint-fixture-path: src/engine/daemon_hook.cc
#include "src/daemon/protocol.h"
