// L1 negative: src/robust (rank 2) reaching down into src/stats (rank 1)
// is the sanctioned direction — the batched WCDE kernel is built on the
// stats layer's PmfArena planes.
// rushlint-fixture-path: src/robust/wcde_batch_extras.cc
#include "src/common/units.h"
#include "src/stats/pmf.h"
#include "src/stats/pmf_arena.h"
