// D1 negative: src/daemon is the wall-clock layer by design (it stamps
// socket events with host time), so clock reads there are exempt — the
// determinism boundary is the engine below it.
// rushlint-fixture-path: src/daemon/rushd_clock.cc
#include <chrono>

double fixture() {
  const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(start.time_since_epoch()).count();
}
