// D5 positive: `theta` names a coverage level (a Probability), so declaring
// it as a bare double in a plan directory must fire.
double plan_quantile(double theta, int bins);
