// D8 positive: a serialized enum's dispatch switch misses a kind — the
// default: arm does not keep new kinds in sync.
struct Record {
  // rushlint-serialized-enum
  enum class Kind : unsigned char { kAlpha = 1, kBeta = 2, kGamma = 3 };
};

int dispatch(Record::Kind kind) {
  switch (kind) {
    case Record::Kind::kAlpha:
      return 1;
    case Record::Kind::kBeta:
      return 2;
    default:
      return 0;
  }
}
