// L1 positive: src/cluster (rank 3) reaching up into src/engine (rank 5) —
// the engine sits above the cluster seam it was extracted from, never the
// other way around.
// rushlint-fixture-path: src/cluster/engine_shim.cc
#include "src/engine/engine.h"
