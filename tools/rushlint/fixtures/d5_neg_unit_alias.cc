// D5 negative: dimension-bearing names declared through a unit alias are
// the blessed spelling; dimensionless doubles with other names stay silent.
using Seconds = double;

struct QueueSlot {
  Seconds deadline = 0.0;
  double weight = 1.0;
};
