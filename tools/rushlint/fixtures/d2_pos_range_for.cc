// Fixture: range-for over a hash container leaks unspecified iteration order
// (rule D2).
#include <unordered_map>

int fixture(const std::unordered_map<int, int>& table) {
  int out = 0;
  for (const auto& [key, value] : table) {
    out = out * 31 + key + value;
  }
  return out;
}
