// L1 negative: src/engine (rank 5) includes strictly-downward — state (4,
// beside metrics), cluster (3), sim (1) — all legal.
// rushlint-fixture-path: src/engine/state_extras.cc
#include "src/cluster/scheduler.h"
#include "src/sim/simulator.h"
#include "src/state/snapshot.h"
