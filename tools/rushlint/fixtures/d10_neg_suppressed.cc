// D10 negative: an OS-ABI call site inside the scope suppresses with a
// reason — the socket API's struct casts are not wire serialization.
// rushlint-fixture-path: src/daemon/probe_transport.cc
int bind_probe(int fd, void* addr, unsigned len) {
  // rushlint: raw-memory-ok(sockaddr cast required by the BSD socket API)
  return do_bind(fd, reinterpret_cast<sockaddr*>(addr), len);
}
