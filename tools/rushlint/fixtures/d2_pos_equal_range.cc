// Fixture: walking an unordered_multimap equal_range visits duplicate-key
// entries in unspecified order (rule D2).
#include <unordered_map>

int fixture(const std::unordered_multimap<int, int>& index, int key) {
  int out = 0;
  auto [it, end] = index.equal_range(key);
  for (; it != end; ++it) out += it->second;
  return out;
}
