// D6 negative: the batched WCDE kernel is on the numeric-kernel allowlist —
// it unwraps Probability/KlRadius once at batch entry and runs the lockstep
// sweeps in raw doubles, exactly like the scalar wcde.cc it must match
// bit for bit.  This fixture pins the allowlist entry: if the path is ever
// dropped from kKernels, this unwrap fires and the self-test fails.
// rushlint-fixture-path: src/robust/wcde_batch.cc
template <class Quantity>
double unwrap_radius(const Quantity& delta) {
  return delta.value();
}
