// D10 negative: src/common/wire.cc is the one sanctioned byte-twiddling
// kernel — everything else goes through its typed primitives.
// rushlint-fixture-path: src/common/wire.cc
double decode_sample(const unsigned char* bytes) {
  double value;
  memcpy(&value, bytes, sizeof(value));
  return value;
}
