// Fixture: the deterministic pattern — point lookups into the hash container
// are fine, and ordered iteration goes through std::map / a sorted vector.
// No rule fires.
#include <map>
#include <unordered_map>
#include <vector>

int fixture(const std::unordered_map<int, int>& table,
            const std::vector<int>& sorted_keys, const std::map<int, int>& ordered) {
  int out = 0;
  for (const int key : sorted_keys) {
    const auto it = table.find(key);
    if (it != table.end()) out = out * 31 + it->second;
  }
  for (const auto& [key, value] : ordered) {
    out = out * 31 + key + value;
  }
  return out;
}
