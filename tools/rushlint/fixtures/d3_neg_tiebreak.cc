// Fixture: the same double-keyed sort with an id tiebreak — ties resolve
// deterministically, nothing fires.
#include <algorithm>
#include <cstdint>
#include <vector>

using Seconds = double;

struct Job {
  std::int64_t id = 0;
  Seconds deadline = 0.0;
};

void fixture(std::vector<Job>& jobs) {
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.deadline < b.deadline || (a.deadline == b.deadline && a.id < b.id);
  });
}
