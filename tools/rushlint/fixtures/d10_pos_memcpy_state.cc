// D10 positive: raw-memory byte punning inside the persistence scope —
// host-endian memcpy breaks the portable wire encoding.
// rushlint-fixture-path: src/state/probe_cache.cc
double decode_sample(const unsigned char* bytes) {
  double value;
  memcpy(&value, bytes, sizeof(value));
  return value;
}
