// D6 negative: the same unwrap is legal inside an allowlisted numeric
// kernel — that is where the raw representation is supposed to escape.
// rushlint-fixture-path: src/robust/wcde.cc
template <class Quantity>
double doubled_raw(const Quantity& q) {
  return q.value() * 2.0;
}
