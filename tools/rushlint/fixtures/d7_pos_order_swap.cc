// D7 positive: both sides carry the same fields but in different order —
// byte-compatible by accident never, misparse always.
struct Sample {
  double value;
  long long weight;
};

void serialize_sample(const Sample& s, WireWriter& out) {
  out.put_double(s.value);
  out.put_i64(s.weight);
}

Sample deserialize_sample(WireReader& in) {
  Sample s;
  s.weight = in.get_i64();
  s.value = in.get_double();
  return s;
}
