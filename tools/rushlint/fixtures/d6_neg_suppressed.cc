// D6 negative: a serialization edge outside the kernel set unwraps with a
// reason.
template <class Quantity>
double emitted(const Quantity& q) {
  // rushlint: unit-escape(JSON emission needs the raw representation)
  return q.value();
}
